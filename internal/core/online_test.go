package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platform"
)

func TestScheduleOnlineNoReleasesMatchesIndependent(t *testing.T) {
	in := platform.Instance{
		task(0, 10, 1),
		task(1, 10, 2),
		task(2, 1, 5),
	}
	pl := platform.NewPlatform(1, 1)
	var rel []ReleasedTask
	for _, tk := range in {
		rel = append(rel, ReleasedTask{Task: tk})
	}
	online, err := ScheduleOnline(rel, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	offline, err := ScheduleIndependent(in, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(online.Makespan()-offline.Makespan()) > 1e-9 {
		t.Errorf("online %v != offline %v with zero releases", online.Makespan(), offline.Makespan())
	}
	if err := online.Schedule.Validate(in, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleOnlineRespectsReleases(t *testing.T) {
	pl := platform.NewPlatform(1, 1)
	rel := []ReleasedTask{
		{Task: task(0, 5, 1), Release: 0},
		{Task: task(1, 5, 1), Release: 10},
	}
	res, err := ScheduleOnline(rel, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Schedule.Entries {
		if e.TaskID == 1 && e.Start < 10-1e-9 {
			t.Errorf("task 1 started at %v before its release 10", e.Start)
		}
	}
	// Task 0 on the GPU at [0,1]; task 1 arrives at 10 -> done at 11.
	if math.Abs(res.Makespan()-11) > 1e-9 {
		t.Errorf("makespan = %v, want 11", res.Makespan())
	}
}

func TestScheduleOnlineSpoliationAfterArrival(t *testing.T) {
	// The CPU grabs the only available task; a better candidate arrives
	// later for the GPU, which afterwards spoliates the CPU's task.
	pl := platform.NewPlatform(1, 1)
	rel := []ReleasedTask{
		{Task: task(0, 100, 10), Release: 0}, // CPU takes it at 0... GPU takes it (front)
		{Task: task(1, 100, 10), Release: 0}, // CPU takes this one
		{Task: task(2, 1, 1), Release: 5},    // keeps GPU busy briefly
	}
	res, err := ScheduleOnline(rel, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spoliations == 0 {
		t.Error("expected at least one spoliation")
	}
	if err := res.Schedule.Validate(platform.Instance{rel[0].Task, rel[1].Task, rel[2].Task}, nil); err != nil {
		t.Fatal(err)
	}
	// GPU: task0 [0,10], task2 [10,11], then spoliates task1 (CPU would
	// finish at 100): [11,21]. Makespan 21.
	if math.Abs(res.Makespan()-21) > 1e-9 {
		t.Errorf("makespan = %v, want 21", res.Makespan())
	}
}

func TestScheduleOnlineInvalid(t *testing.T) {
	pl := platform.NewPlatform(1, 1)
	if _, err := ScheduleOnline([]ReleasedTask{{Task: task(0, 1, 1), Release: -1}}, pl, Options{}); err == nil {
		t.Error("negative release accepted")
	}
	if _, err := ScheduleOnline([]ReleasedTask{{Task: task(0, -1, 1)}}, pl, Options{}); err == nil {
		t.Error("invalid task accepted")
	}
	if _, err := ScheduleOnline(nil, platform.Platform{}, Options{}); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestScheduleOnlineRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		pl := platform.NewPlatform(1+rng.Intn(3), 1+rng.Intn(2))
		T := 1 + rng.Intn(20)
		var rel []ReleasedTask
		var in platform.Instance
		for i := 0; i < T; i++ {
			tk := task(i, 0.1+rng.Float64()*10, 0.1+rng.Float64()*10)
			in = append(in, tk)
			rel = append(rel, ReleasedTask{Task: tk, Release: rng.Float64() * 20})
		}
		res, err := ScheduleOnline(rel, pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(in, nil); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Starts respect releases.
		relByID := map[int]float64{}
		for _, r := range rel {
			relByID[r.Task.ID] = r.Release
		}
		abortCount := map[int]int{}
		for _, e := range res.Schedule.Entries {
			if e.Start < relByID[e.TaskID]-1e-9 {
				t.Fatalf("trial %d: task %d started %v before release %v", trial, e.TaskID, e.Start, relByID[e.TaskID])
			}
			if e.Aborted {
				abortCount[e.TaskID]++
			}
		}
		// Lemma 5 does not hold online (both classes may spoliate at
		// different epochs), but a single task still cannot ping-pong: a
		// spoliated task runs on its strictly faster class afterwards.
		for id, c := range abortCount {
			if c > 1 {
				t.Fatalf("trial %d: task %d aborted %d times", trial, id, c)
			}
		}
	}
}

package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/workloads"
)

// BenchmarkQueuePush measures the ordered-insert cost at several queue
// sizes (the scheduler's hottest data structure).
func BenchmarkQueuePush(b *testing.B) {
	for _, size := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			tasks := make([]platform.Task, size)
			for i := range tasks {
				p := 1 + rng.Float64()*10
				tasks[i] = platform.Task{ID: i, CPUTime: p, GPUTime: p / (0.5 + rng.Float64()*20)}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := NewQueue(false)
				for _, t := range tasks {
					q.Push(t)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size), "ns/push")
		})
	}
}

// BenchmarkScheduleIndependentScaling measures end-to-end scheduling
// throughput at growing instance sizes (the "sublinear decision cost"
// requirement of Section 1 in aggregate form).
func BenchmarkScheduleIndependentScaling(b *testing.B) {
	pl := platform.NewPlatform(20, 4)
	for _, T := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("tasks=%d", T), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			in := workloads.UniformInstance(T, 1, 100, 0.2, 40, rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ScheduleIndependent(in, pl, Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*T), "ns/task")
		})
	}
}

// BenchmarkScheduleDAGCholesky measures the DAG event loop on the paper's
// flagship workload.
func BenchmarkScheduleDAGCholesky(b *testing.B) {
	for _, N := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("N=%d", N), func(b *testing.B) {
			g := workloads.Cholesky(N)
			pl := platform.NewPlatform(20, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ScheduleDAG(g, pl, Options{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*g.Len()), "ns/task")
		})
	}
}

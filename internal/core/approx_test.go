package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/sched"
)

// theoremBound returns the proven approximation ratio of HeteroPrio for the
// platform shape (Table 2).
func theoremBound(pl platform.Platform) float64 {
	switch {
	case pl.CPUs == 1 && pl.GPUs == 1:
		return phi // Theorem 7
	case pl.GPUs == 1:
		return 1 + phi // Theorem 9
	default:
		return 2 + math.Sqrt2 // Theorem 12
	}
}

// TestApproximationBoundsRandom verifies Theorems 7, 9 and 12 empirically:
// on random small instances (where the exact optimum is computable), the
// HeteroPrio makespan never exceeds the proven bound for the platform
// shape.
func TestApproximationBoundsRandom(t *testing.T) {
	shapes := []struct {
		name string
		m, n int
	}{
		{"1CPU+1GPU", 1, 1},
		{"3CPU+1GPU", 3, 1},
		{"5CPU+1GPU", 5, 1},
		{"3CPU+2GPU", 3, 2},
		{"4CPU+3GPU", 4, 3},
	}
	rng := rand.New(rand.NewSource(2017))
	for _, shape := range shapes {
		pl := platform.NewPlatform(shape.m, shape.n)
		bound := theoremBound(pl)
		worst := 0.0
		for trial := 0; trial < 120; trial++ {
			T := 1 + rng.Intn(9)
			var in platform.Instance
			for i := 0; i < T; i++ {
				// Spread acceleration factors widely, including rho < 1.
				p := 0.1 + rng.Float64()*10
				accel := math.Exp(rng.Float64()*6 - 2) // ~[0.13, 55]
				in = append(in, platform.Task{ID: i, CPUTime: p, GPUTime: p / accel})
			}
			res, err := ScheduleIndependent(in, pl, Options{})
			if err != nil {
				t.Fatal(err)
			}
			opt, err := sched.OptimalIndependent(in, pl)
			if err != nil {
				t.Fatal(err)
			}
			ratio := res.Makespan() / opt
			if ratio > bound+1e-6 {
				t.Fatalf("%s trial %d: ratio %v exceeds bound %v\ninstance: %v",
					shape.name, trial, ratio, bound, in)
			}
			worst = math.Max(worst, ratio)
		}
		t.Logf("%s: worst observed ratio %.4f (bound %.4f)", shape.name, worst, bound)
	}
}

// TestLemma3Corollary verifies corollary (iii) of Lemma 3: when every task
// satisfies max(p, q) <= C_max^Opt, HeteroPrio is a 2-approximation.
func TestLemma3Corollary(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	checked := 0
	for trial := 0; trial < 400 && checked < 60; trial++ {
		pl := platform.NewPlatform(1+rng.Intn(3), 1+rng.Intn(2))
		T := 3 + rng.Intn(7)
		var in platform.Instance
		for i := 0; i < T; i++ {
			// Near-balanced tasks keep max(p,q) small relative to opt.
			p := 1 + rng.Float64()
			q := 1 + rng.Float64()
			in = append(in, platform.Task{ID: i, CPUTime: p, GPUTime: q})
		}
		opt, err := sched.OptimalIndependent(in, pl)
		if err != nil {
			t.Fatal(err)
		}
		applies := true
		for _, task := range in {
			if task.MaxTime() > opt {
				applies = false
				break
			}
		}
		if !applies {
			continue
		}
		checked++
		res, err := ScheduleIndependent(in, pl, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan() > 2*opt+1e-6 {
			t.Fatalf("trial %d: makespan %v > 2*opt %v", trial, res.Makespan(), 2*opt)
		}
	}
	if checked == 0 {
		t.Fatal("no instance satisfied the corollary's precondition")
	}
}

// Package engine is the parallel experiment runner: a fixed-width worker
// pool (Pool) and a deterministic fan-out primitive (Map) that spreads
// independent experiment cells across goroutines while keeping the output
// byte-identical to a sequential run.
//
// The paper's sweeps are embarrassingly parallel — every (instance, seed,
// algorithm) cell is a pure function of the task durations — as long as
// two rules hold, and the package enforces both by construction:
//
//   - per-cell randomness is derived from the cell's index (Cell.Seed via
//     DeriveSeed, a splitmix64 mix of the job seed and the index), never
//     drawn from a *rand.Rand shared across cells, so the work a cell does
//     is independent of scheduling order;
//   - reduction is ordered: Map writes each cell's result into a slot
//     preallocated at the cell's index and returns only when every cell
//     has finished, so callers see results in input order regardless of
//     completion order.
//
// The pool bounds in-flight cells globally (concurrent Maps sharing a
// Pool never run more than its width of cells at once), honors context
// cancellation, and converts a worker panic into a *PanicError carrying
// the offending cell's identity. Pool metrics (busy workers, queue depth,
// cells completed, busy seconds) are registered in an internal/obs
// Registry.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Cell identifies one unit of work inside a Map call.
type Cell struct {
	// Index is the cell's position in the job, 0-based. Results are
	// delivered in index order.
	Index int
	// Seed is the cell's private RNG seed, derived deterministically from
	// the job seed and Index. Two cells of one job never share a seed
	// stream.
	Seed int64
}

// Rand returns a fresh deterministic source for the cell. Call it inside
// the cell function: a *rand.Rand must never cross a goroutine boundary
// (the goroutinecheck analyzer enforces this for the experiment drivers).
func (c Cell) Rand() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// DeriveSeed maps (base, index) to a well-mixed per-cell seed using the
// splitmix64 finalizer. Adjacent indices yield unrelated seeds, so cells
// that feed them to rand.NewSource get independent-looking streams.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + uint64(index+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// PanicError is a worker panic converted into an error, carrying the
// identity of the offending cell and the panicking goroutine's stack.
type PanicError struct {
	Cell  Cell
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: cell %d (seed %d) panicked: %v", e.Cell.Index, e.Cell.Seed, e.Value)
}

// Metric names of the pool catalog, mirroring the scheduler catalog in
// internal/obs (one spelling, referenced by dashboards and tests).
const (
	MetricPoolWorkers     = "hp_pool_workers"
	MetricPoolBusy        = "hp_pool_busy_workers"
	MetricPoolQueueDepth  = "hp_pool_queue_depth"
	MetricPoolCells       = "hp_pool_cells_total"
	MetricPoolBusySeconds = "hp_pool_cell_busy_seconds_total"
)

// Pool is a fixed-width worker pool. The width bounds the number of cells
// executing at any instant across every concurrent Map call sharing the
// pool, so a server can hand one pool to all its requests without
// oversubscribing the machine. A Pool is safe for concurrent use and has
// no Close: it holds no goroutines of its own (Map spawns and joins its
// workers per call).
type Pool struct {
	width int
	slots chan struct{}

	workers     *obs.Gauge
	busy        *obs.Gauge
	queueDepth  *obs.Gauge
	cells       *obs.Counter
	busySeconds *obs.Counter
}

// NewPool returns a pool of the given width; width <= 0 means
// runtime.GOMAXPROCS(0). Metrics are registered in reg, or in a private
// registry when reg is nil (still readable via Stats).
func NewPool(width int, reg *obs.Registry) *Pool {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	p := &Pool{
		width: width,
		slots: make(chan struct{}, width),
		workers: reg.Gauge(MetricPoolWorkers,
			"Width of the experiment worker pool (max in-flight cells)."),
		busy: reg.Gauge(MetricPoolBusy,
			"Workers currently executing an experiment cell."),
		queueDepth: reg.Gauge(MetricPoolQueueDepth,
			"Cells admitted to a Map call but not yet executing."),
		cells: reg.Counter(MetricPoolCells,
			"Experiment cells completed (including failed cells)."),
		busySeconds: reg.Counter(MetricPoolBusySeconds,
			"Cumulative wall-clock seconds spent executing cells; with hp_pool_cells_total this yields cells/sec."),
	}
	p.workers.Set(float64(width))
	return p
}

// Width returns the pool's worker count.
func (p *Pool) Width() int { return p.width }

// Stats is a point-in-time snapshot of the pool counters.
type Stats struct {
	Width       int
	Busy        int
	QueueDepth  int
	Cells       float64
	BusySeconds float64
}

// Stats snapshots the pool metrics.
func (p *Pool) Stats() Stats {
	return Stats{
		Width:       p.width,
		Busy:        int(p.busy.Value()),
		QueueDepth:  int(p.queueDepth.Value()),
		Cells:       p.cells.Value(),
		BusySeconds: p.busySeconds.Value(),
	}
}

var defaultPool struct {
	once sync.Once
	p    *Pool
}

// Default returns the process-wide shared pool, sized GOMAXPROCS and
// created on first use. The convenience wrappers in internal/expr run on
// it, so library callers get parallel sweeps without plumbing a pool.
func Default() *Pool {
	defaultPool.once.Do(func() { defaultPool.p = NewPool(0, nil) })
	return defaultPool.p
}

// Job describes one Map fan-out.
type Job struct {
	// Cells is the number of cells; Map calls fn once per index in
	// [0, Cells).
	Cells int
	// Seed is the base seed cell seeds are derived from. Jobs that use no
	// randomness can leave it zero.
	Seed int64
	// MaxParallel caps this job's own concurrency below the pool width
	// (<= 0 means the pool width). A server uses it to stop one request
	// from monopolizing the shared pool.
	MaxParallel int
}

// Map runs fn for every cell of the job on the pool and returns the
// results in cell order — byte-identical to running the cells
// sequentially, whatever the pool width. On error it returns the failing
// cell's error (preferring the lowest-index cell that genuinely failed
// over cells cut short by the resulting cancellation) and cancels the
// remaining cells. A panicking cell surfaces as a *PanicError instead of
// crashing the process.
func Map[T any](ctx context.Context, p *Pool, job Job, fn func(ctx context.Context, c Cell) (T, error)) ([]T, error) {
	n := job.Cells
	if n < 0 {
		return nil, fmt.Errorf("engine: negative cell count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	width := p.width
	if job.MaxParallel > 0 && job.MaxParallel < width {
		width = job.MaxParallel
	}
	if n < width {
		width = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]T, n)
	errs := make([]error, n)
	var next atomic.Int64
	p.queueDepth.Add(float64(n))
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runCell(ctx, p, Cell{Index: i, Seed: DeriveSeed(job.Seed, i)}, &results[i], fn)
				if errs[i] != nil {
					cancel()
				}
			}
		}()
	}
	wg.Wait()

	// Prefer the lowest-index genuine failure: cells cancelled because an
	// earlier-dispatched (but higher-index) cell failed would otherwise
	// mask the real error with context.Canceled.
	var firstErr error
	for _, err := range errs {
		if err == nil || errors.Is(err, context.Canceled) {
			continue
		}
		firstErr = err
		break
	}
	if firstErr == nil {
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// One submits a single function to the pool as a one-cell job: it waits
// for a pool slot (honoring ctx while waiting), runs fn with panic
// capture, and maintains the pool metrics. It is the context-aware submit
// path hpserve uses for single-schedule requests, so every simulation —
// fan-out or not — shows up in hp_pool_cells_total and respects the
// pool's global concurrency bound.
func One[T any](ctx context.Context, p *Pool, fn func(ctx context.Context) (T, error)) (T, error) {
	res, err := Map(ctx, p, Job{Cells: 1},
		func(ctx context.Context, _ Cell) (T, error) { return fn(ctx) })
	if err != nil {
		var zero T
		return zero, err
	}
	return res[0], nil
}

// runCell takes a pool slot, executes one cell with panic capture, and
// maintains the pool metrics. The queue-depth gauge counts the cell until
// it starts (or is abandoned to cancellation). When ctx carries a trace
// span, the cell gets a child span (covering slot wait + execution)
// annotated with its index and derived seed.
//
//hplint:hotpath
func runCell[T any](ctx context.Context, p *Pool, c Cell, out *T, fn func(ctx context.Context, c Cell) (T, error)) error {
	sp := obs.SpanFromContext(ctx)
	var csp *obs.Span
	if sp != nil {
		csp = sp.StartChild("cell")
	}
	if csp != nil {
		csp.AnnotateInt("cell_index", int64(c.Index))
		csp.AnnotateInt("cell_seed", c.Seed)
	}
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		p.queueDepth.Add(-1)
		if csp != nil {
			csp.Annotate("outcome", "cancelled")
			csp.End()
		}
		return ctx.Err()
	}
	p.queueDepth.Add(-1)
	p.busy.Add(1)
	start := time.Now()
	err := capture(ctx, c, out, fn)
	p.busySeconds.Add(time.Since(start).Seconds())
	p.busy.Add(-1)
	p.cells.Inc()
	<-p.slots
	if csp != nil {
		csp.End()
	}
	return err
}

// capture invokes fn, converting a panic into a *PanicError.
//
//hplint:allow allocflow panic recovery is off the steady-state path; the PanicError and stack snapshot are built only while the run is already dying
func capture[T any](ctx context.Context, c Cell, out *T, fn func(ctx context.Context, c Cell) (T, error)) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Cell: c, Value: v, Stack: debug.Stack()}
		}
	}()
	var res T
	res, err = fn(ctx, c)
	if err == nil {
		*out = res
	}
	return err
}

package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

func TestPanicErrorMessage(t *testing.T) {
	pe := &PanicError{Cell: Cell{Index: 7, Seed: 42}, Value: "boom"}
	got := pe.Error()
	want := "engine: cell 7 (seed 42) panicked: boom"
	if got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}

func TestNewPoolDefaultWidth(t *testing.T) {
	p := NewPool(0, nil)
	if w := p.Width(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Width() = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if p := NewPool(3, nil); p.Width() != 3 {
		t.Errorf("Width() = %d, want 3", p.Width())
	}
}

func TestStatsSnapshot(t *testing.T) {
	p := NewPool(2, nil)
	st := p.Stats()
	if st.Width != 2 || st.Busy != 0 || st.QueueDepth != 0 || st.Cells != 0 || st.BusySeconds != 0 {
		t.Errorf("fresh pool stats = %+v, want all-zero except width 2", st)
	}
	if _, err := Map(context.Background(), p, Job{Cells: 5}, func(_ context.Context, c Cell) (int, error) {
		return c.Index, nil
	}); err != nil {
		t.Fatal(err)
	}
	st = p.Stats()
	if st.Cells != 5 {
		t.Errorf("Cells = %v after 5-cell map, want 5", st.Cells)
	}
	if st.Busy != 0 || st.QueueDepth != 0 {
		t.Errorf("idle pool shows busy=%d queue=%d, want 0/0", st.Busy, st.QueueDepth)
	}
	if st.BusySeconds < 0 {
		t.Errorf("BusySeconds = %v, want >= 0", st.BusySeconds)
	}
}

func TestDefaultPoolShared(t *testing.T) {
	a := Default()
	b := Default()
	if a == nil || a != b {
		t.Fatalf("Default() not a stable singleton: %p vs %p", a, b)
	}
	if a.Width() != runtime.GOMAXPROCS(0) {
		t.Errorf("default pool width = %d, want GOMAXPROCS %d", a.Width(), runtime.GOMAXPROCS(0))
	}
	// The shared pool must actually run work.
	got, err := One(context.Background(), a, func(_ context.Context) (string, error) {
		return "ran", nil
	})
	if err != nil || got != "ran" {
		t.Errorf("One on default pool = (%q, %v), want (ran, nil)", got, err)
	}
}

func TestOneError(t *testing.T) {
	sentinel := errors.New("cell failed")
	got, err := One(context.Background(), NewPool(1, nil), func(_ context.Context) (int, error) {
		return 0, sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want %v", err, sentinel)
	}
	if got != 0 {
		t.Errorf("value on error = %d, want zero", got)
	}
}

func TestOneCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := One(ctx, NewPool(1, nil), func(ctx context.Context) (int, error) {
		return 1, ctx.Err()
	})
	if err == nil {
		t.Error("One on a cancelled context returned nil error")
	}
}

package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestDeriveSeed(t *testing.T) {
	// Distinct per index, distinct per base, stable across calls.
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := DeriveSeed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: indices %d and %d both derive %d", prev, i, s)
		}
		seen[s] = i
		if s != DeriveSeed(42, i) {
			t.Fatalf("DeriveSeed(42, %d) unstable", i)
		}
		if s == DeriveSeed(43, i) {
			t.Errorf("index %d: bases 42 and 43 derive the same seed", i)
		}
	}
}

func TestCellRandIndependent(t *testing.T) {
	a := Cell{Index: 0, Seed: DeriveSeed(1, 0)}.Rand()
	b := Cell{Index: 1, Seed: DeriveSeed(1, 1)}.Rand()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws from sibling cells", same)
	}
}

// TestMapOrderedReduction is the ordering property test: whatever the
// pool width and per-cell completion order, Map's output must equal the
// width-1 (sequential) run element for element.
func TestMapOrderedReduction(t *testing.T) {
	const n = 500
	fn := func(_ context.Context, c Cell) (string, error) {
		// Cell-derived randomness plus index: any misrouted result or
		// seed-derivation drift changes the value.
		r := c.Rand()
		return fmt.Sprintf("%d:%d:%d", c.Index, c.Seed, r.Int63()), nil
	}
	seq, err := Map(context.Background(), NewPool(1, nil), Job{Cells: n, Seed: 99}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{2, 3, 8, 64} {
		par, err := Map(context.Background(), NewPool(width, nil), Job{Cells: n, Seed: 99}, fn)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != n {
			t.Fatalf("width %d: %d results, want %d", width, len(par), n)
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("width %d: cell %d = %q, sequential run got %q", width, i, par[i], seq[i])
			}
		}
	}
}

func TestMapPanicCapture(t *testing.T) {
	_, err := Map(context.Background(), NewPool(4, nil), Job{Cells: 16}, func(_ context.Context, c Cell) (int, error) {
		if c.Index == 3 {
			panic("boom")
		}
		return c.Index, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Cell.Index != 3 || pe.Value != "boom" {
		t.Errorf("panic error = %+v, want cell 3 / boom", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error has no stack")
	}
}

func TestMapErrorIdentity(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(context.Background(), NewPool(4, nil), Job{Cells: 64}, func(_ context.Context, c Cell) (int, error) {
		if c.Index == 7 {
			return 0, fmt.Errorf("cell %d: %w", c.Index, boom)
		}
		return c.Index, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the genuine cell failure", err)
	}
	// Cells cancelled in the failure's wake must not mask it.
	if errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v leaks the internal cancellation", err)
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan struct{}, 64)
	_, err := Map(ctx, NewPool(2, nil), Job{Cells: 64}, func(ctx context.Context, c Cell) (int, error) {
		started <- struct{}{}
		if c.Index == 0 {
			cancel() // external cancellation mid-run
			return 0, nil
		}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation must have cut the run short: with 64 cells and the
	// first one cancelling, nowhere near all cells may start.
	if n := len(started); n == 64 {
		t.Error("all 64 cells started despite cancellation")
	}
}

func TestMapEmptyAndNegative(t *testing.T) {
	res, err := Map(context.Background(), NewPool(2, nil), Job{Cells: 0}, func(_ context.Context, _ Cell) (int, error) { return 1, nil })
	if err != nil || res != nil {
		t.Errorf("empty job = (%v, %v), want (nil, nil)", res, err)
	}
	if _, err := Map(context.Background(), NewPool(2, nil), Job{Cells: -1}, func(_ context.Context, _ Cell) (int, error) { return 1, nil }); err == nil {
		t.Error("negative cell count accepted")
	}
}

// TestPoolBoundsInFlight shares one width-2 pool between two concurrent
// Maps and asserts the global in-flight bound holds.
func TestPoolBoundsInFlight(t *testing.T) {
	p := NewPool(2, nil)
	var inFlight, peak atomic.Int64
	fn := func(_ context.Context, c Cell) (int, error) {
		cur := inFlight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		// A little arithmetic so cells overlap.
		r := c.Rand()
		s := 0
		for i := 0; i < 2000; i++ {
			s += int(r.Int63() % 7)
		}
		inFlight.Add(-1)
		return s, nil
	}
	var wg sync.WaitGroup
	for m := 0; m < 4; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := Map(context.Background(), p, Job{Cells: 100}, fn); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Errorf("peak in-flight cells %d, pool width 2", got)
	}
}

func TestMapMaxParallel(t *testing.T) {
	var inFlight, peak atomic.Int64
	_, err := Map(context.Background(), NewPool(8, nil), Job{Cells: 200, MaxParallel: 1}, func(_ context.Context, c Cell) (int, error) {
		cur := inFlight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return c.Index, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got != 1 {
		t.Errorf("peak in-flight cells %d with MaxParallel 1", got)
	}
}

func TestPoolMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	p := NewPool(3, reg)
	if _, err := Map(context.Background(), p, Job{Cells: 10}, func(_ context.Context, c Cell) (int, error) { return c.Index, nil }); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Width != 3 {
		t.Errorf("width %d, want 3", st.Width)
	}
	if st.Cells != 10 {
		t.Errorf("cells %v, want 10", st.Cells)
	}
	if st.Busy != 0 || st.QueueDepth != 0 {
		t.Errorf("pool not drained: busy %d, queued %d", st.Busy, st.QueueDepth)
	}
	if st.BusySeconds < 0 {
		t.Errorf("busy seconds %v negative", st.BusySeconds)
	}
}

// TestMapRaceStress hammers one shared pool with many tiny cells from
// several goroutines; run under -race it checks the slot/slice/metric
// plumbing for data races.
func TestMapRaceStress(t *testing.T) {
	p := NewPool(8, nil)
	var wg sync.WaitGroup
	for m := 0; m < 6; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := Map(context.Background(), p, Job{Cells: 2000, Seed: int64(m)}, func(_ context.Context, c Cell) (int64, error) {
				return c.Rand().Int63(), nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			for i, v := range res {
				if want := (Cell{Index: i, Seed: DeriveSeed(int64(m), i)}).Rand().Int63(); v != want {
					t.Errorf("map %d cell %d = %d, want %d", m, i, v, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

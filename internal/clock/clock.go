// Package clock provides the injectable time source used by the live
// runtime executor (package runtime). The paper's guarantees — and this
// repository's replay and validation machinery — require a schedule to be
// a pure function of task durations; wall-clock reads buried in scheduling
// code break that. Code in scheduling packages therefore never calls
// time.Now directly (enforced by the simdeterminism analyzer in
// internal/analysis): it receives a Clock, which is the wall clock in
// production and a Manual clock in tests and replays.
package clock

import (
	"sync"
	"time"
)

// Clock is a time source. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the elapsed time between t and Now.
	Since(t time.Time) time.Duration
}

// Wall is the real wall clock. It is the only place in the repository
// (outside tests and command entry points) that reads time.Now.
type Wall struct{}

// Now returns time.Now().
func (Wall) Now() time.Time { return time.Now() }

// Since returns time.Since(t).
func (Wall) Since(t time.Time) time.Duration { return time.Since(t) }

// Manual is a deterministic clock that only moves when Advance is called.
// It makes live-runtime runs replayable the same way simulator runs are:
// two executions that advance the clock identically observe identical
// timestamps.
type Manual struct {
	mu  sync.Mutex
	now time.Time
}

// NewManual returns a Manual clock frozen at start.
func NewManual(start time.Time) *Manual { return &Manual{now: start} }

// Now returns the clock's current frozen time.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Since returns the elapsed time between t and the frozen time.
func (m *Manual) Since(t time.Time) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now.Sub(t)
}

// Advance moves the clock forward by d (backward if d is negative).
func (m *Manual) Advance(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(d)
}

package clock

import (
	"testing"
	"time"
)

func TestManualFrozen(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	m := NewManual(start)
	if got := m.Now(); !got.Equal(start) {
		t.Fatalf("Now() = %v, want %v", got, start)
	}
	if got := m.Since(start); got != 0 {
		t.Fatalf("Since(start) = %v, want 0", got)
	}
}

func TestManualAdvance(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	m := NewManual(start)
	m.Advance(3 * time.Second)
	if got := m.Since(start); got != 3*time.Second {
		t.Fatalf("Since(start) = %v, want 3s", got)
	}
	if got := m.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("Now() = %v, want %v", got, start.Add(3*time.Second))
	}
}

func TestWallMonotone(t *testing.T) {
	var w Wall
	a := w.Now()
	if d := w.Since(a); d < 0 {
		t.Fatalf("Since(Now()) = %v, want >= 0", d)
	}
}

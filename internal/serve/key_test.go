package serve_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/serve"
)

func testInstance(n int, rng *rand.Rand) platform.Instance {
	in := make(platform.Instance, 0, n)
	for i := 0; i < n; i++ {
		p := 0.5 + rng.Float64()*20
		a := math.Exp(rng.Float64()*4 - 2)
		in = append(in, platform.Task{ID: i, CPUTime: p, GPUTime: p / a, Priority: float64(rng.Intn(4))})
	}
	return in
}

func shuffled(in platform.Instance, rng *rand.Rand) platform.Instance {
	out := in.Clone()
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func TestKeyPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pl := platform.NewPlatform(4, 2)
	for trial := 0; trial < 50; trial++ {
		in := testInstance(1+rng.Intn(30), rng)
		k1 := serve.KeyOf(in, pl, "HeteroPrio-min", 1, "workload=uniform")
		k2 := serve.KeyOf(shuffled(in, rng), pl, "HeteroPrio-min", 1, "workload=uniform")
		if k1 != k2 {
			t.Fatalf("trial %d: permuted instance changed the key", trial)
		}
	}
}

func TestKeyDurationSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pl := platform.NewPlatform(4, 2)
	in := testInstance(12, rng)
	base := serve.KeyOf(in, pl, "alg", 1)
	for i := range in {
		for _, perturb := range []func(*platform.Task){
			func(t *platform.Task) { t.CPUTime = math.Nextafter(t.CPUTime, math.Inf(1)) },
			func(t *platform.Task) { t.GPUTime = math.Nextafter(t.GPUTime, 0) },
			func(t *platform.Task) { t.Priority++ },
		} {
			mod := in.Clone()
			perturb(&mod[i])
			if serve.KeyOf(mod, pl, "alg", 1) == base {
				t.Fatalf("task %d: one-ulp perturbation did not change the key", i)
			}
		}
	}
}

// TestKeyIgnoresIdentity: IDs and names label output rows but never move
// a task in the schedule of a generated workload, so they stay out of the
// hash — the workload parameters that determine them are keyed instead.
func TestKeyIgnoresIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pl := platform.NewPlatform(2, 1)
	in := testInstance(6, rng)
	mod := in.Clone()
	for i := range mod {
		mod[i].ID += 100
		mod[i].Name = "renamed"
	}
	if serve.KeyOf(in, pl, "alg", 1) != serve.KeyOf(mod, pl, "alg", 1) {
		t.Fatal("renumbering/renaming tasks changed the key")
	}
}

func TestKeyRequestFieldSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	in := testInstance(8, rng)
	pl := platform.NewPlatform(4, 2)
	base := serve.KeyOf(in, pl, "alg", 1, "workload=uniform", "n=8")
	variants := []serve.Key{
		serve.KeyOf(in, platform.NewPlatform(5, 2), "alg", 1, "workload=uniform", "n=8"),
		serve.KeyOf(in, platform.NewPlatform(4, 3), "alg", 1, "workload=uniform", "n=8"),
		serve.KeyOf(in, pl, "other-alg", 1, "workload=uniform", "n=8"),
		serve.KeyOf(in, pl, "alg", 2, "workload=uniform", "n=8"),
		serve.KeyOf(in, pl, "alg", 1, "workload=chains", "n=8"),
		serve.KeyOf(in, pl, "alg", 1, "workload=uniform"),
		serve.KeyOf(in[:7], pl, "alg", 1, "workload=uniform", "n=8"),
	}
	for i, k := range variants {
		if k == base {
			t.Errorf("variant %d: request field change did not change the key", i)
		}
	}
}

// TestKeyNoLengthConfusion guards the length-prefixed encoding: moving a
// boundary between adjacent variable-length fields must not collide.
func TestKeyNoLengthConfusion(t *testing.T) {
	in := platform.Instance{{ID: 0, CPUTime: 1, GPUTime: 2}}
	pl := platform.NewPlatform(1, 1)
	a := serve.KeyOf(in, pl, "ab", 1, "c")
	b := serve.KeyOf(in, pl, "a", 1, "bc")
	if a == b {
		t.Fatal("alg/param boundary shift collided")
	}
	if serve.KeyOf(in, pl, "a", 1, "b", "c") == serve.KeyOf(in, pl, "a", 1, "bc") {
		t.Fatal("param split collided")
	}
}

func TestCanonicalEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := testInstance(10, rng)
	if !serve.CanonicalEqual(in, shuffled(in, rng)) {
		t.Fatal("permutation broke canonical equality")
	}
	mod := in.Clone()
	mod[3].GPUTime *= 1.0000001
	if serve.CanonicalEqual(in, mod) {
		t.Fatal("perturbed duration still canonically equal")
	}
	if serve.CanonicalEqual(in, in[:9]) {
		t.Fatal("different lengths canonically equal")
	}
}

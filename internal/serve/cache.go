package serve

import (
	"container/list"
	"context"
	"sync"

	"repro/internal/obs"
)

// Metric names of the serving cache, one spelling referenced by the
// DESIGN.md §7 catalog, the hpserve tests and dashboards. Caches sharing
// one registry share these families: the counters and the entries gauge
// then aggregate across caches, which is the fleet-level reading a
// dashboard wants.
const (
	MetricCacheHits      = "hp_cache_hits_total"
	MetricCacheMisses    = "hp_cache_misses_total"
	MetricCacheEvictions = "hp_cache_evictions_total"
	MetricCacheEntries   = "hp_cache_entries"
)

// Outcome says how a Do call was served.
type Outcome int

const (
	// Miss: this call ran compute and (on success) stored the result.
	Miss Outcome = iota
	// Hit: the result was already cached.
	Hit
	// Coalesced: an identical call was already computing; this call
	// waited for it and shared its result without running compute.
	Coalesced
)

// String implements fmt.Stringer for test failure messages.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "unknown"
	}
}

// call is one in-flight computation waiters coalesce onto. val and err
// are written once, before done is closed; waiters read them only after
// <-done, so the fields need no lock.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// centry is one cached entry, stored in the LRU list.
type centry[V any] struct {
	key Key
	val V
}

// Cache is a bounded LRU of schedule results keyed by canonical request
// Key, with single-flight coalescing: concurrent Do calls for one key run
// compute once and share the result. Entries never expire — the key is a
// content hash of every input of the pure simulation, so a cached result
// can only ever be exactly right — they are only evicted by capacity.
// The zero value is not usable; call NewCache.
type Cache[V any] struct {
	capacity int

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	entries   *obs.Gauge

	mu      sync.Mutex
	ll      *list.List // front = most recently used; values are *centry[V]
	items   map[Key]*list.Element
	calls   map[Key]*call[V]
	waiting int // requests currently coalesced onto in-flight calls
}

// NewCache returns a cache holding at most capacity entries (minimum 1).
// Metrics are registered in reg, or in a private registry when reg is nil.
func NewCache[V any](capacity int, reg *obs.Registry) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Cache[V]{
		capacity: capacity,
		hits: reg.Counter(MetricCacheHits,
			"Requests served from the schedule result cache (including coalesced shares of an in-flight computation)."),
		misses: reg.Counter(MetricCacheMisses,
			"Requests that ran a new computation to populate the cache."),
		evictions: reg.Counter(MetricCacheEvictions,
			"Cache entries evicted by the LRU capacity bound."),
		entries: reg.Gauge(MetricCacheEntries,
			"Entries currently resident in the schedule result cache."),
		ll:    list.New(),
		items: make(map[Key]*list.Element),
		calls: make(map[Key]*call[V]),
	}
}

// Len returns the number of resident entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Waiting returns the number of Do calls currently coalesced onto
// in-flight computations. Tests use it to sequence deterministically
// against the coalescing window.
func (c *Cache[V]) Waiting() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.waiting
}

// Get returns the cached value for k without computing, touching LRU
// recency on a hit. It does not count toward the hit/miss metrics.
func (c *Cache[V]) Get(k Key) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*centry[V]).val, true
	}
	var zero V
	return zero, false
}

// Do returns the value for k, computing it with compute on a miss. An
// error from compute is returned to the caller and every coalesced
// waiter, and nothing is cached. A waiter whose ctx ends before the
// shared computation finishes returns ctx.Err() (the computation itself
// is not cancelled: its result stays valid for the cache and any other
// waiter). compute runs without the cache lock held.
func (c *Cache[V]) Do(ctx context.Context, k Key, compute func() (V, error)) (V, Outcome, error) {
	return c.DoCtx(ctx, k, func(context.Context) (V, error) { return compute() })
}

// DoCtx is Do with a context-aware compute callback. When ctx carries a
// trace span, DoCtx records a "cache" child span annotated with the
// outcome; a coalesced wait gets a nested "coalesce" span covering the
// time blocked on the in-flight computation, and on a miss compute
// receives a context carrying the cache span, so spans the computation
// starts nest under it (this is what keeps a trace's phase durations
// summing to the request latency instead of double counting).
func (c *Cache[V]) DoCtx(ctx context.Context, k Key, compute func(context.Context) (V, error)) (V, Outcome, error) {
	sp := obs.SpanFromContext(ctx)
	var csp *obs.Span
	if sp != nil {
		csp = sp.StartChild("cache")
	}
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*centry[V]).val
		c.hits.Inc()
		c.mu.Unlock()
		if csp != nil {
			csp.Annotate("outcome", "hit")
			csp.End()
		}
		return v, Hit, nil
	}
	if cl, ok := c.calls[k]; ok {
		c.waiting++
		c.mu.Unlock()
		defer func() {
			c.mu.Lock()
			c.waiting--
			c.mu.Unlock()
		}()
		if csp != nil {
			csp.Annotate("outcome", "coalesced")
			defer csp.End()
			wsp := csp.StartChild("coalesce")
			defer wsp.End()
		}
		var zero V
		select {
		case <-cl.done:
			if cl.err != nil {
				return zero, Coalesced, cl.err
			}
			c.hits.Inc()
			return cl.val, Coalesced, nil
		case <-ctx.Done():
			return zero, Coalesced, ctx.Err()
		}
	}
	c.misses.Inc()
	cl := &call[V]{done: make(chan struct{})}
	c.calls[k] = cl
	c.mu.Unlock()

	cctx := ctx
	if csp != nil {
		csp.Annotate("outcome", "miss")
		defer csp.End()
		cctx = obs.ContextWithSpan(ctx, csp)
	}
	cl.val, cl.err = compute(cctx)

	c.mu.Lock()
	delete(c.calls, k)
	if cl.err == nil {
		if el, ok := c.items[k]; ok {
			// Lost a benign race with another populate of the same key
			// (possible only via future APIs; keep the resident entry).
			c.ll.MoveToFront(el)
		} else {
			// The entries gauge moves by deltas so caches sharing one
			// registry aggregate instead of stomping each other.
			c.items[k] = c.ll.PushFront(&centry[V]{key: k, val: cl.val})
			c.entries.Add(1)
			for c.ll.Len() > c.capacity {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.items, oldest.Value.(*centry[V]).key)
				c.evictions.Inc()
				c.entries.Add(-1)
			}
		}
	}
	c.mu.Unlock()
	close(cl.done)
	var zero V
	if cl.err != nil {
		return zero, Miss, cl.err
	}
	return cl.val, Miss, nil
}

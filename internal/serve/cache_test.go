package serve_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

func keyN(i int) serve.Key {
	var k serve.Key
	k[0] = byte(i)
	k[1] = byte(i >> 8)
	return k
}

// counters re-fetches the cache metric values from the shared registry
// (registering an existing family returns the same instance).
func counters(reg *obs.Registry) (hits, misses, evictions, entries float64) {
	return reg.Counter(serve.MetricCacheHits, "").Value(),
		reg.Counter(serve.MetricCacheMisses, "").Value(),
		reg.Counter(serve.MetricCacheEvictions, "").Value(),
		reg.Gauge(serve.MetricCacheEntries, "").Value()
}

func mustDo[V any](t *testing.T, c *serve.Cache[V], k serve.Key, want serve.Outcome, compute func() (V, error)) V {
	t.Helper()
	v, outcome, err := c.Do(context.Background(), k, compute)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != want {
		t.Fatalf("outcome %v, want %v", outcome, want)
	}
	return v
}

func TestCacheHitMissEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := serve.NewCache[string](2, reg)
	val := func(s string) func() (string, error) {
		return func() (string, error) { return s, nil }
	}
	fail := func() (string, error) {
		t.Fatal("compute ran on a hit")
		return "", nil
	}
	mustDo(t, c, keyN(1), serve.Miss, val("a"))
	if got := mustDo(t, c, keyN(1), serve.Hit, fail); got != "a" {
		t.Fatalf("hit returned %q", got)
	}
	mustDo(t, c, keyN(2), serve.Miss, val("b"))
	// Touch key 1 so key 2 is LRU, then overflow the capacity.
	mustDo(t, c, keyN(1), serve.Hit, fail)
	mustDo(t, c, keyN(3), serve.Miss, val("c"))
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	if _, ok := c.Get(keyN(2)); ok {
		t.Fatal("LRU entry 2 survived the eviction")
	}
	if _, ok := c.Get(keyN(1)); !ok {
		t.Fatal("recently used entry 1 was evicted")
	}
	hits, misses, evictions, entries := counters(reg)
	if hits != 2 || misses != 3 || evictions != 1 || entries != 2 {
		t.Fatalf("metrics hits=%v misses=%v evictions=%v entries=%v, want 2/3/1/2",
			hits, misses, evictions, entries)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := serve.NewCache[int](4, nil)
	boom := errors.New("boom")
	_, outcome, err := c.Do(context.Background(), keyN(1), func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) || outcome != serve.Miss {
		t.Fatalf("got (%v, %v)", outcome, err)
	}
	if c.Len() != 0 {
		t.Fatal("error was cached")
	}
	// The next call recomputes and can succeed.
	if got := mustDo(t, c, keyN(1), serve.Miss, func() (int, error) { return 42, nil }); got != 42 {
		t.Fatalf("got %d", got)
	}
}

// TestCacheCoalesce blocks the first computation and checks that a
// concurrent identical request shares it instead of computing again: the
// waiter observes the in-flight call (its own compute must not run), and
// once unblocked both get the value while compute ran exactly once.
func TestCacheCoalesce(t *testing.T) {
	reg := obs.NewRegistry()
	c := serve.NewCache[int](4, reg)
	started := make(chan struct{})
	unblock := make(chan struct{})
	var computes atomic.Int32

	const waiters = 4
	var wg sync.WaitGroup
	results := make([]struct {
		v       int
		outcome serve.Outcome
		err     error
	}, waiters+1)
	do := func(i int) {
		defer wg.Done()
		r := &results[i]
		r.v, r.outcome, r.err = c.Do(context.Background(), keyN(1), func() (int, error) {
			if computes.Add(1) == 1 {
				close(started)
			}
			<-unblock
			return 7, nil
		})
	}
	wg.Add(1)
	go do(0)
	<-started
	wg.Add(waiters)
	for i := 1; i <= waiters; i++ {
		go do(i)
	}
	// Unblock only once every waiter has joined the in-flight call, so
	// the outcome split below is deterministic.
	for c.Waiting() != waiters {
		runtime.Gosched()
	}
	close(unblock)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	var miss, coalesced int
	for i, r := range results {
		if r.err != nil || r.v != 7 {
			t.Fatalf("request %d: (%d, %v)", i, r.v, r.err)
		}
		switch r.outcome {
		case serve.Miss:
			miss++
		case serve.Coalesced:
			coalesced++
		}
	}
	if miss != 1 || coalesced != waiters {
		t.Fatalf("%d misses, %d coalesced, want 1/%d", miss, coalesced, waiters)
	}
	hits, misses, _, _ := counters(reg)
	if misses != 1 || hits != waiters {
		t.Fatalf("metrics hits=%v misses=%v, want %d/1", hits, misses, waiters)
	}
}

// TestCacheCoalescedErrorShared: a waiter coalesced onto a failing
// computation sees the shared error, and nothing lands in the cache.
// Waiting() sequences the test: the computation is only unblocked once
// the waiter has verifiably joined it.
func TestCacheCoalescedErrorShared(t *testing.T) {
	c := serve.NewCache[int](4, nil)
	boom := errors.New("boom")
	started := make(chan struct{})
	unblock := make(chan struct{})
	firstDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), keyN(1), func() (int, error) {
			close(started)
			<-unblock
			return 0, boom
		})
		firstDone <- err
	}()
	<-started
	type waiterResult struct {
		outcome serve.Outcome
		err     error
	}
	waiterDone := make(chan waiterResult, 1)
	go func() {
		_, outcome, err := c.Do(context.Background(), keyN(1), func() (int, error) {
			t.Error("waiter compute ran during an in-flight call")
			return 0, nil
		})
		waiterDone <- waiterResult{outcome, err}
	}()
	for c.Waiting() == 0 {
		runtime.Gosched()
	}
	close(unblock)
	if err := <-firstDone; !errors.Is(err, boom) {
		t.Fatalf("first: %v", err)
	}
	if w := <-waiterDone; !errors.Is(w.err, boom) || w.outcome != serve.Coalesced {
		t.Fatalf("waiter: (%v, %v), want coalesced boom", w.outcome, w.err)
	}
	if c.Len() != 0 {
		t.Fatal("failed computation was cached")
	}
}

// TestCacheWaiterContextEnds: a coalesced waiter whose context ends
// returns the context error immediately; the underlying computation keeps
// going and still populates the cache.
func TestCacheWaiterContextEnds(t *testing.T) {
	c := serve.NewCache[int](4, nil)
	started := make(chan struct{})
	unblock := make(chan struct{})
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		if v := mustDo(t, c, keyN(1), serve.Miss, func() (int, error) {
			close(started)
			<-unblock
			return 9, nil
		}); v != 9 {
			t.Errorf("first got %d", v)
		}
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, outcome, err := c.Do(ctx, keyN(1), func() (int, error) {
		t.Error("waiter compute ran")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) || outcome != serve.Coalesced {
		t.Fatalf("got (%v, %v), want coalesced context.Canceled", outcome, err)
	}
	close(unblock)
	<-firstDone
	if got := mustDo(t, c, keyN(1), serve.Hit, func() (int, error) { return 0, nil }); got != 9 {
		t.Fatalf("cache holds %d, want 9", got)
	}
}

// TestCacheConcurrentDistinctKeys hammers the cache from many goroutines
// under -race: distinct keys compute independently, repeated keys are
// served consistently.
func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := serve.NewCache[string](64, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := i % 10
				want := fmt.Sprintf("v%d", k)
				v, _, err := c.Do(context.Background(), keyN(k), func() (string, error) { return want, nil })
				if err != nil || v != want {
					t.Errorf("g%d i%d: (%q, %v)", g, i, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 10 {
		t.Fatalf("len %d, want 10", c.Len())
	}
}

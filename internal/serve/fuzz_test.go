package serve_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/serve"
)

// decodeKeyInstance mirrors internal/core's fuzz decoder: two bytes per
// task (CPU time, acceleration-factor bucket).
func decodeKeyInstance(data []byte) platform.Instance {
	var in platform.Instance
	for i := 0; i+1 < len(data) && len(in) < 40; i += 2 {
		p := 0.1 + float64(data[i])/8
		accel := math.Exp((float64(data[i+1])/255)*6 - 2)
		in = append(in, platform.Task{ID: len(in), CPUTime: p, GPUTime: p / accel})
	}
	return in
}

// FuzzCacheKey asserts hash equality ⇔ canonical-instance equality over
// arbitrary instances: a permuted task order never changes the key, any
// perturbed duration always does, and two independently decoded
// instances agree on their keys exactly when they agree canonically.
func FuzzCacheKey(f *testing.F) {
	f.Add([]byte{10, 200, 10, 200, 50, 128})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{255, 0, 0, 255, 37, 99, 201, 17, 5, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			t.Skip()
		}
		pl := platform.NewPlatform(1+int(data[0])%8, 1+int(data[1])%4)
		half := 2 + (len(data)-2)/2
		a := decodeKeyInstance(data[2:half])
		b := decodeKeyInstance(data[half:])
		if len(a) == 0 {
			t.Skip()
		}
		ka := serve.KeyOf(a, pl, "alg", 1)

		// Permutation invariance: shuffle with a seed derived from the data.
		rng := rand.New(rand.NewSource(int64(len(data))*1009 + int64(data[2])))
		perm := a.Clone()
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if !serve.CanonicalEqual(a, perm) {
			t.Fatal("permutation changed the canonical form")
		}
		if serve.KeyOf(perm, pl, "alg", 1) != ka {
			t.Fatalf("permuted task order changed the key\ninstance: %v", a)
		}

		// Duration sensitivity: a one-ulp perturbation of any task breaks
		// canonical equality and the key with it.
		victim := int(data[2]) % len(a)
		mod := a.Clone()
		mod[victim].GPUTime = math.Nextafter(mod[victim].GPUTime, math.Inf(1))
		if serve.CanonicalEqual(a, mod) {
			t.Fatalf("task %d: perturbed instance still canonically equal", victim)
		}
		if serve.KeyOf(mod, pl, "alg", 1) == ka {
			t.Fatalf("task %d: perturbed duration kept the key", victim)
		}

		// Hash equality ⇔ canonical equality between two independently
		// decoded instances (SHA-256 collisions are out of scope).
		if len(b) > 0 {
			kb := serve.KeyOf(b, pl, "alg", 1)
			if eq := serve.CanonicalEqual(a, b); eq != (ka == kb) {
				t.Fatalf("canonical equality %v but key equality %v\na: %v\nb: %v", eq, ka == kb, a, b)
			}
		}
	})
}

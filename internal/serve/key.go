// Package serve is the serving front end hpserve puts between HTTP
// handlers and the simulation pool: a canonical content hash for schedule
// requests (key.go), a bounded LRU result cache with single-flight request
// coalescing (cache.go), and admission control with bounded queueing and
// load shedding (admission.go).
//
// The whole front end rests on one property of the simulator: a schedule
// is a pure function of (instance, platform, algorithm, seed). Caching a
// result under the canonical hash of those inputs is therefore exact — a
// hit returns byte-identical output to the miss that populated it — and
// coalescing N concurrent identical requests into one underlying run
// changes nothing but the amount of work done.
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"

	"repro/internal/platform"
)

// Key is the canonical content hash of a schedule request. Two requests
// have equal keys iff they agree on the canonical task multiset (the
// sorted (p, q, priority) list), the platform shape, the algorithm label,
// the seed, and every extra parameter. Keys are comparable and usable as
// map keys.
type Key [sha256.Size]byte

// CanonTask is one task in canonical form: the fields that determine
// scheduling decisions, stripped of identity (ID and Name label outputs
// but never change makespans or assignments of a generated workload).
type CanonTask struct {
	P, Q, Prio float64
}

// CanonicalTasks returns the canonical form of an instance: the
// (p, q, priority) triples sorted lexicographically. Permuting the input
// does not change the result; perturbing any duration does.
func CanonicalTasks(in platform.Instance) []CanonTask {
	out := make([]CanonTask, len(in))
	for i, t := range in {
		out[i] = CanonTask{P: t.CPUTime, Q: t.GPUTime, Prio: t.Priority}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// less orders canonical tasks lexicographically by (P, Q, Prio). The
// != / < pairs only route distinct floats; equal fields fall through to
// the next component.
func (a CanonTask) less(b CanonTask) bool {
	if a.P != b.P {
		return a.P < b.P
	}
	if a.Q != b.Q {
		return a.Q < b.Q
	}
	return a.Prio < b.Prio
}

// CanonicalEqual reports whether two instances have the same canonical
// form, i.e. the same multiset of (p, q, priority) triples. It is the
// equality KeyOf is injective over (up to hash collisions).
func CanonicalEqual(a, b platform.Instance) bool {
	if len(a) != len(b) {
		return false
	}
	ca, cb := CanonicalTasks(a), CanonicalTasks(b)
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// KeyOf hashes a schedule request into its canonical Key: SHA-256 over a
// fixed-width encoding of the platform shape, the algorithm label, the
// seed, the extra parameters (each length-prefixed, in argument order —
// callers pass identifying request fields such as "workload=cholesky"),
// and the canonical task list. Every float is encoded via its IEEE-754
// bit pattern, so distinct values (down to one ulp) yield distinct
// encodings and there is no formatting round-trip.
func KeyOf(in platform.Instance, pl platform.Platform, alg string, seed int64, params ...string) Key {
	h := sha256.New()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	str := func(s string) {
		word(uint64(len(s)))
		h.Write([]byte(s))
	}
	str("hpserve-key-v1")
	word(uint64(pl.CPUs))
	word(uint64(pl.GPUs))
	str(alg)
	word(uint64(seed))
	word(uint64(len(params)))
	for _, p := range params {
		str(p)
	}
	canon := CanonicalTasks(in)
	word(uint64(len(canon)))
	for _, t := range canon {
		word(math.Float64bits(t.P))
		word(math.Float64bits(t.Q))
		word(math.Float64bits(t.Prio))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

package serve

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// collectOutcomes flattens a finished trace's span names and their
// outcome annotations.
func collectOutcomes(td *obs.TraceData) map[string]string {
	out := map[string]string{}
	for _, sd := range td.Spans() {
		key := sd.Name
		out[key] = ""
		for _, a := range sd.Annots[:sd.NAnn] {
			if a.Key == "outcome" {
				out[key] = a.Str
			}
		}
	}
	return out
}

func TestAdmissionSpanOutcomes(t *testing.T) {
	tr := obs.NewTracer(8)
	a := NewAdmission(1, 0, nil)

	// Fast path.
	root := tr.StartTrace("req")
	ctx := obs.ContextWithSpan(context.Background(), root)
	release, err := a.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Shed: slot busy, queue size 0.
	root2 := tr.StartTrace("req2")
	ctx2 := obs.ContextWithSpan(context.Background(), root2)
	if _, err := a.Acquire(ctx2); err != ErrQueueFull {
		t.Fatalf("want shed, got %v", err)
	}
	root2.End()
	release()
	root.End()

	got1 := collectOutcomes(tr.Recent()[1]) // req finished last? Recent is newest-first
	got2 := collectOutcomes(tr.Recent()[0])
	// root2 ended before root, so Recent()[0] is root's trace.
	if got2["admission"] != "fast_path" {
		t.Errorf("fast-path trace outcomes: %v", got2)
	}
	if got1["admission"] != "shed" {
		t.Errorf("shed trace outcomes: %v", got1)
	}
}

func TestAdmissionSpanUntracedContext(t *testing.T) {
	a := NewAdmission(1, 1, nil)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
}

func TestCacheSpanOutcomes(t *testing.T) {
	tr := obs.NewTracer(8)
	c := NewCache[int](4, nil)
	var k Key
	k[0] = 0x51

	do := func(name string) (int, Outcome) {
		root := tr.StartTrace(name)
		ctx := obs.ContextWithSpan(context.Background(), root)
		v, out, err := c.DoCtx(ctx, k, func(ctx context.Context) (int, error) {
			// The compute context must carry the cache span so nested
			// work parents correctly.
			if obs.SpanFromContext(ctx) == nil {
				t.Error("compute context carries no span")
			}
			return 42, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		root.End()
		return v, out
	}

	if v, out := do("miss"); v != 42 || out != Miss {
		t.Fatalf("first call: %d %v", v, out)
	}
	if v, out := do("hit"); v != 42 || out != Hit {
		t.Fatalf("second call: %d %v", v, out)
	}

	rec := tr.Recent()
	hitOutcomes := collectOutcomes(rec[0])
	missOutcomes := collectOutcomes(rec[1])
	if missOutcomes["cache"] != "miss" {
		t.Errorf("miss trace: %v", missOutcomes)
	}
	if hitOutcomes["cache"] != "hit" {
		t.Errorf("hit trace: %v", hitOutcomes)
	}
}

func TestCacheSpanCoalesced(t *testing.T) {
	tr := obs.NewTracer(8)
	c := NewCache[int](4, nil)
	var k Key
	k[0] = 0x52
	gate := make(chan struct{})
	started := make(chan struct{})

	go func() {
		_, _, _ = c.Do(context.Background(), k, func() (int, error) {
			close(started)
			<-gate
			return 7, nil
		})
	}()
	<-started

	root := tr.StartTrace("waiter")
	ctx := obs.ContextWithSpan(context.Background(), root)
	done := make(chan Outcome, 1)
	go func() {
		_, out, _ := c.DoCtx(ctx, k, func(context.Context) (int, error) { return 0, nil })
		done <- out
	}()
	for c.Waiting() == 0 {
	}
	close(gate)
	if out := <-done; out != Coalesced {
		t.Fatalf("outcome %v, want coalesced", out)
	}
	root.End()

	outcomes := collectOutcomes(tr.Recent()[0])
	if outcomes["cache"] != "coalesced" {
		t.Errorf("outcomes: %v", outcomes)
	}
	if _, ok := outcomes["coalesce"]; !ok {
		t.Errorf("no coalesce wait span: %v", outcomes)
	}
}

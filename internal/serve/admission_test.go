package serve_test

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"repro/internal/obs"
	"repro/internal/serve"
)

func TestAdmissionFastPath(t *testing.T) {
	a := serve.NewAdmission(2, 0, nil)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r1()
	r2()
	// Released slots are reusable.
	r3, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r3()
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	reg := obs.NewRegistry()
	a := serve.NewAdmission(1, 0, reg)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
	if shed := reg.Counter(serve.MetricServeShed, "").Value(); shed != 1 {
		t.Fatalf("shed counter %v, want 1", shed)
	}
	release()
	// With the slot free again the next request is admitted.
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2()
}

func TestAdmissionContextEndsWhileQueued(t *testing.T) {
	reg := obs.NewRegistry()
	a := serve.NewAdmission(1, 1, reg)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// The slot is busy and the queue has room: an already-ended context
	// is noticed while waiting and the queue token is returned.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if q := reg.Gauge(serve.MetricServeQueued, "").Value(); q != 0 {
		t.Fatalf("queued gauge %v after rejection, want 0", q)
	}
	// The queue slot freed by the rejection is usable again.
	if _, err := a.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("second queued acquire: got %v, want context.Canceled", err)
	}
	release()
}

// TestAdmissionQueuedThenAdmitted parks one request in the queue and
// checks it gets the slot as soon as the holder releases it.
func TestAdmissionQueuedThenAdmitted(t *testing.T) {
	reg := obs.NewRegistry()
	a := serve.NewAdmission(1, 1, reg)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan func(), 1)
	go func() {
		r, err := a.Acquire(context.Background())
		if err != nil {
			t.Error(err)
		}
		admitted <- r
	}()
	// Wait (yielding, not sleeping) until the request is parked in the
	// queue, so the release below is what admits it.
	queued := reg.Gauge(serve.MetricServeQueued, "")
	for queued.Value() != 1 {
		runtime.Gosched()
	}
	release()
	r2 := <-admitted
	if queued.Value() != 0 {
		t.Fatalf("queued gauge %v after admission, want 0", queued.Value())
	}
	r2()
}

func TestAdmissionMarkDeadline(t *testing.T) {
	reg := obs.NewRegistry()
	a := serve.NewAdmission(1, 1, reg)
	a.MarkDeadline()
	a.MarkDeadline()
	if v := reg.Counter(serve.MetricServeDeadlineExceeded, "").Value(); v != 2 {
		t.Fatalf("deadline counter %v, want 2", v)
	}
	if a.Concurrent() != 1 || a.QueueDepth() != 1 {
		t.Fatalf("shape (%d, %d), want (1, 1)", a.Concurrent(), a.QueueDepth())
	}
}

package serve

import (
	"context"
	"errors"

	"repro/internal/obs"
)

// Metric names of the admission controller (DESIGN.md §7 catalog).
const (
	MetricServeQueued           = "hp_serve_queued"
	MetricServeShed             = "hp_serve_shed_total"
	MetricServeDeadlineExceeded = "hp_serve_deadline_exceeded_total"
)

// ErrQueueFull is returned by Acquire when the bounded admission queue is
// full: the request is shed immediately instead of waiting. hpserve maps
// it to HTTP 429.
var ErrQueueFull = errors.New("serve: admission queue full, request shed")

// Admission is the load-control valve in front of the simulation path: at
// most `concurrent` requests execute at once, at most `queueDepth` more
// wait for a slot, and everything beyond that is shed immediately. The
// admission state machine per request is
//
//	arrive ── free slot ──────────────▶ running ── release ─▶ done
//	   │
//	   └─ queue has room ─▶ queued ── slot frees ─▶ running
//	   │                      │
//	   │                      └─ ctx deadline ─▶ rejected (503)
//	   └─ queue full ─▶ shed (429)
//
// Both channels are used as counting semaphores; Admission holds no
// goroutines and is safe for concurrent use.
type Admission struct {
	slots chan struct{} // one token per executing request
	queue chan struct{} // one token per waiting request

	queued   *obs.Gauge
	shed     *obs.Counter
	deadline *obs.Counter
}

// NewAdmission returns an admission controller allowing `concurrent`
// executing requests (minimum 1) and `queueDepth` waiting ones (0 means
// shed as soon as every slot is busy). Metrics are registered in reg, or
// in a private registry when reg is nil.
func NewAdmission(concurrent, queueDepth int, reg *obs.Registry) *Admission {
	if concurrent < 1 {
		concurrent = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Admission{
		slots: make(chan struct{}, concurrent),
		queue: make(chan struct{}, queueDepth),
		queued: reg.Gauge(MetricServeQueued,
			"Requests admitted to the bounded queue and waiting for an execution slot."),
		shed: reg.Counter(MetricServeShed,
			"Requests shed with 429 because the admission queue was full."),
		deadline: reg.Counter(MetricServeDeadlineExceeded,
			"Requests rejected with 503 because their deadline expired before completion."),
	}
}

// Concurrent returns the number of execution slots.
func (a *Admission) Concurrent() int { return cap(a.slots) }

// QueueDepth returns the queue bound.
func (a *Admission) QueueDepth() int { return cap(a.queue) }

// Acquire admits one request: it returns a release function once an
// execution slot is held, ErrQueueFull if every slot is busy and the
// queue is full, or ctx.Err() if ctx ends while queued. The caller must
// call release exactly once when the request finishes.
//
// When ctx carries a trace span, Acquire records an "admission" child
// span covering the wait, annotated with the outcome (fast_path, queued,
// shed, deadline) — the span that answers "was this slow request stuck
// behind the admission valve?".
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	sp := obs.SpanFromContext(ctx)
	var asp *obs.Span
	if sp != nil {
		asp = sp.StartChild("admission")
	}
	// Fast path: a slot is free, skip the queue entirely.
	select {
	case a.slots <- struct{}{}:
		if asp != nil {
			asp.Annotate("outcome", "fast_path")
			asp.End()
		}
		return a.release, nil
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		a.shed.Inc()
		if asp != nil {
			asp.Annotate("outcome", "shed")
			asp.End()
		}
		return nil, ErrQueueFull
	}
	a.queued.Add(1)
	leave := func() {
		a.queued.Add(-1)
		<-a.queue
	}
	select {
	case a.slots <- struct{}{}:
		leave()
		if asp != nil {
			asp.Annotate("outcome", "queued")
			asp.End()
		}
		return a.release, nil
	case <-ctx.Done():
		leave()
		if asp != nil {
			asp.Annotate("outcome", "deadline")
			asp.End()
		}
		return nil, ctx.Err()
	}
}

func (a *Admission) release() { <-a.slots }

// MarkDeadline records one deadline-expired rejection. The counter lives
// here with the other admission metrics, but the increment belongs to the
// layer that maps errors to HTTP statuses: a deadline can fire while
// queued in Acquire or while waiting on a coalesced cache computation,
// and only the handler sees both paths (counting inside Acquire would
// miss the latter and double-count retries).
func (a *Admission) MarkDeadline() { a.deadline.Inc() }

// Package sim provides the discrete-event simulation substrate shared by
// all schedulers: a worker kernel that advances virtual time, a schedule
// recorder that keeps every execution attempt (including runs aborted by
// spoliation), schedule validation, and the metrics used in the paper's
// evaluation (makespan, per-class idle time with aborted work counted as
// idle, and equivalent acceleration factors).
package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/dag"
	"repro/internal/platform"
)

// Entry records one execution attempt of a task on a worker.
type Entry struct {
	TaskID int
	Worker int
	Kind   platform.Kind
	Start  float64
	End    float64
	// Aborted marks a run killed by spoliation at time End; its work is
	// lost and the task runs again elsewhere.
	Aborted bool
	// Spoliation marks a run that was started by spoliating the task from
	// the other resource class.
	Spoliation bool
}

// Duration returns End - Start.
func (e Entry) Duration() float64 { return e.End - e.Start }

// Schedule is the full trace of a simulation run.
type Schedule struct {
	Platform platform.Platform
	Entries  []Entry
}

// Makespan returns the completion time of the last successful run.
func (s *Schedule) Makespan() float64 {
	var ms float64
	for _, e := range s.Entries {
		if !e.Aborted {
			ms = math.Max(ms, e.End)
		}
	}
	return ms
}

// SuccessfulEntries returns the non-aborted entries.
func (s *Schedule) SuccessfulEntries() []Entry {
	out := make([]Entry, 0, len(s.Entries))
	for _, e := range s.Entries {
		if !e.Aborted {
			out = append(out, e)
		}
	}
	return out
}

// SpoliationCount returns the number of aborted runs.
func (s *Schedule) SpoliationCount() int {
	var c int
	for _, e := range s.Entries {
		if e.Aborted {
			c++
		}
	}
	return c
}

// AssignedTasks returns, for each resource class, the tasks whose
// successful run executed on that class.
func (s *Schedule) AssignedTasks(in platform.Instance) map[platform.Kind]platform.Instance {
	byID := in.ByID()
	out := map[platform.Kind]platform.Instance{}
	for _, e := range s.Entries {
		if e.Aborted {
			continue
		}
		t, ok := byID[e.TaskID]
		if !ok {
			continue
		}
		out[e.Kind] = append(out[e.Kind], t)
	}
	return out
}

// EquivalentAccel returns the acceleration factor of the "equivalent task"
// formed by all tasks successfully executed on class k (Figure 8). NaN if
// the class executed nothing.
func (s *Schedule) EquivalentAccel(in platform.Instance, k platform.Kind) float64 {
	return s.AssignedTasks(in)[k].EquivalentAccel()
}

// BusyTime returns the total successful processing time on class k. Aborted
// work is excluded (the paper counts it as idle time).
func (s *Schedule) BusyTime(k platform.Kind) float64 {
	var b float64
	for _, e := range s.Entries {
		if !e.Aborted && e.Kind == k {
			b += e.Duration()
		}
	}
	return b
}

// IdleTime returns the idle time on class k over the schedule horizon
// [0, makespan]: workers(k) * makespan - successful work on k. Work spent
// on aborted runs counts as idle, matching the paper's footnote in
// Section 6.2.
func (s *Schedule) IdleTime(k platform.Kind) float64 {
	horizon := s.Makespan()
	return float64(s.Platform.Count(k))*horizon - s.BusyTime(k)
}

// NormalizedIdleTime returns IdleTime(k) divided by usage, where usage is
// the amount of class-k resource consumed by the lower-bound solution
// (Figure 9's normalization).
func (s *Schedule) NormalizedIdleTime(k platform.Kind, usage float64) float64 {
	if usage <= 0 {
		return math.NaN()
	}
	return s.IdleTime(k) / usage
}

// Validate checks the structural invariants of the schedule against the
// instance it claims to execute and an optional DAG:
//   - every worker index is valid and entry kinds match the worker class;
//   - per-worker runs do not overlap;
//   - every task has exactly one successful run with the exact processing
//     time of its class, and every aborted run is shorter than or equal to
//     that class time and ends no later than the successful completion;
//   - every aborted run has a spoliation restart at its abort time whose
//     estimated completion strictly improves on the victim's (Algorithm 1's
//     spoliation-profit rule: an idle worker may only steal a task it
//     would finish strictly earlier);
//   - with a DAG, every run starts at or after the completion of all the
//     task's predecessors (their successful runs).
func (s *Schedule) Validate(in platform.Instance, g *dag.Graph) error {
	return s.ValidateTimed(in, g, nil)
}

// ValidateTimed is Validate with an explicit duration model: dur gives the
// actual execution time of a task on a class (nil means the nominal
// processing times). Used to validate schedules produced under estimation
// noise, where runs take their actual — not nominal — durations.
func (s *Schedule) ValidateTimed(in platform.Instance, g *dag.Graph, dur func(t platform.Task, k platform.Kind) float64) error {
	return s.validate(in, g, dur, false)
}

// ValidateRelaxed checks every structural invariant except exact run
// durations: a successful run may take *longer* than the nominal class
// time (e.g. it waited for a data transfer while occupying the worker)
// but never less. Used by the transfer-delay extension.
func (s *Schedule) ValidateRelaxed(in platform.Instance, g *dag.Graph) error {
	return s.validate(in, g, nil, true)
}

func (s *Schedule) validate(in platform.Instance, g *dag.Graph, dur func(t platform.Task, k platform.Kind) float64, relaxed bool) error {
	const tol = 1e-6
	if dur == nil {
		dur = func(t platform.Task, k platform.Kind) float64 { return t.Time(k) }
	}
	byID := in.ByID()
	perWorker := make(map[int][]Entry)
	success := make(map[int]Entry)
	for i, e := range s.Entries {
		if e.Worker < 0 || e.Worker >= s.Platform.Workers() {
			return fmt.Errorf("sim: entry %d: worker %d out of range", i, e.Worker)
		}
		if got := s.Platform.KindOf(e.Worker); got != e.Kind {
			return fmt.Errorf("sim: entry %d: kind %v does not match worker %d (%v)", i, e.Kind, e.Worker, got)
		}
		t, ok := byID[e.TaskID]
		if !ok {
			return fmt.Errorf("sim: entry %d: unknown task %d", i, e.TaskID)
		}
		if e.Start < -tol || e.End < e.Start-tol {
			return fmt.Errorf("sim: entry %d: bad interval [%v,%v]", i, e.Start, e.End)
		}
		want := dur(t, e.Kind)
		if e.Aborted {
			if !relaxed && e.Duration() > want+tol {
				return fmt.Errorf("sim: entry %d: aborted run of task %d longer (%v) than full time %v", i, e.TaskID, e.Duration(), want)
			}
		} else {
			short := e.Duration() < want-tol*math.Max(1, want)
			long := e.Duration() > want+tol*math.Max(1, want)
			if short || (long && !relaxed) {
				return fmt.Errorf("sim: entry %d: task %d duration %v, want %v on %v", i, e.TaskID, e.Duration(), want, e.Kind)
			}
			if prev, dup := success[e.TaskID]; dup {
				return fmt.Errorf("sim: task %d has two successful runs (%v and %v)", e.TaskID, prev, e)
			}
			success[e.TaskID] = e
		}
		perWorker[e.Worker] = append(perWorker[e.Worker], e)
	}
	for id := range byID {
		if _, ok := success[id]; !ok {
			return fmt.Errorf("sim: task %d has no successful run", id)
		}
	}
	for _, e := range s.Entries {
		if e.Aborted {
			if fin := success[e.TaskID]; e.End > fin.End+tol {
				return fmt.Errorf("sim: task %d aborted at %v after its successful completion %v", e.TaskID, e.End, fin.End)
			}
		}
	}
	// Spoliation profit (Algorithm 1): every aborted run must be answered
	// by a spoliation restart at the abort instant, and the thief's
	// estimated completion — start plus the nominal processing time of its
	// class, which is what the scheduler decided on — must strictly
	// improve on the victim's. Estimated times are used on both sides even
	// under an actual-duration model (ValidateTimed): the rule is about
	// what the scheduler believed, which never includes the noise.
	for i, a := range s.Entries {
		if !a.Aborted {
			continue
		}
		restart := -1
		for j, r := range s.Entries {
			if r.Spoliation && r.TaskID == a.TaskID && math.Abs(r.Start-a.End) <= tol {
				restart = j
				break
			}
		}
		if restart < 0 {
			return fmt.Errorf("sim: entry %d: task %d aborted at %v with no spoliation restart", i, a.TaskID, a.End)
		}
		r := s.Entries[restart]
		t := byID[a.TaskID]
		victimEnd := a.Start + t.Time(a.Kind)
		thiefEnd := r.Start + t.Time(r.Kind)
		if thiefEnd >= victimEnd {
			return fmt.Errorf("sim: task %d spoliated without profit: restart on %v would finish at %v, victim on %v at %v",
				a.TaskID, r.Kind, thiefEnd, a.Kind, victimEnd)
		}
	}
	for w, es := range perWorker {
		sort.Slice(es, func(i, j int) bool { return es[i].Start < es[j].Start })
		for i := 1; i < len(es); i++ {
			if es[i].Start < es[i-1].End-tol {
				return fmt.Errorf("sim: worker %d: overlapping runs of tasks %d and %d", w, es[i-1].TaskID, es[i].TaskID)
			}
		}
	}
	if g != nil {
		for _, e := range s.Entries {
			for _, p := range g.Preds(e.TaskID) {
				if e.Start < success[p].End-tol {
					return fmt.Errorf("sim: task %d starts at %v before predecessor %d completes at %v", e.TaskID, e.Start, p, success[p].End)
				}
			}
		}
	}
	return nil
}

// Gantt renders an ASCII Gantt chart with the given number of columns.
// Aborted runs are drawn with 'x', successful runs with the last hex digit
// of the task ID.
func (s *Schedule) Gantt(cols int) string {
	if cols < 10 {
		cols = 10
	}
	ms := s.Makespan()
	if ms <= 0 {
		return "(empty schedule)\n"
	}
	scale := float64(cols) / ms
	var b strings.Builder
	fmt.Fprintf(&b, "time: 0 .. %.4g (one column = %.4g)\n", ms, ms/float64(cols))
	for w := 0; w < s.Platform.Workers(); w++ {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range s.Entries {
			if e.Worker != w {
				continue
			}
			lo := int(e.Start * scale)
			hi := int(e.End * scale)
			if hi >= cols {
				hi = cols - 1
			}
			ch := byte("0123456789abcdef"[e.TaskID%16])
			if e.Aborted {
				ch = 'x'
			}
			for i := lo; i <= hi && i < cols; i++ {
				row[i] = ch
			}
		}
		fmt.Fprintf(&b, "%6s |%s|\n", s.Platform.WorkerName(w), row)
	}
	return b.String()
}

// CSV renders the schedule as comma-separated rows:
// task,worker,kind,start,end,aborted,spoliation.
func (s *Schedule) CSV() string {
	var b strings.Builder
	b.WriteString("task,worker,kind,start,end,aborted,spoliation\n")
	for _, e := range s.Entries {
		fmt.Fprintf(&b, "%d,%d,%s,%.9g,%.9g,%v,%v\n",
			e.TaskID, e.Worker, e.Kind, e.Start, e.End, e.Aborted, e.Spoliation)
	}
	return b.String()
}

package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dag"
	"repro/internal/platform"
)

func task(id int, p, q float64) platform.Task {
	return platform.Task{ID: id, CPUTime: p, GPUTime: q}
}

func TestKernelStartComplete(t *testing.T) {
	pl := platform.NewPlatform(1, 1)
	k := NewKernel(pl)
	if k.NumBusy() != 0 || len(k.IdleWorkers(platform.CPU)) != 1 {
		t.Fatal("fresh kernel state wrong")
	}
	k.Start(0, task(0, 5, 1), false) // CPU run, 5 units
	k.Start(1, task(1, 9, 2), false) // GPU run, 2 units
	if k.NumBusy() != 2 {
		t.Fatalf("NumBusy = %d, want 2", k.NumBusy())
	}
	if !k.Busy(0) || !k.Busy(1) {
		t.Fatal("both workers should be busy")
	}
	if got := k.NextCompletion(); got != 2 {
		t.Fatalf("NextCompletion = %v, want 2", got)
	}
	run, ok := k.CompleteNext()
	if !ok || run.Task.ID != 1 || k.Now != 2 {
		t.Fatalf("first completion = %+v at %v", run, k.Now)
	}
	run, ok = k.CompleteNext()
	if !ok || run.Task.ID != 0 || k.Now != 5 {
		t.Fatalf("second completion = %+v at %v", run, k.Now)
	}
	if _, ok := k.CompleteNext(); ok {
		t.Fatal("no third completion expected")
	}
	if math.IsInf(k.NextCompletion(), 1) != true {
		t.Fatal("NextCompletion on idle kernel should be +Inf")
	}
}

func TestKernelRunningAndRunOf(t *testing.T) {
	pl := platform.NewPlatform(2, 1)
	k := NewKernel(pl)
	k.Start(0, task(0, 3, 1), false)
	k.Start(2, task(1, 7, 4), true)
	cpuRuns := k.RunningOn(platform.CPU)
	if len(cpuRuns) != 1 || cpuRuns[0].Task.ID != 0 {
		t.Fatalf("RunningOn(CPU) = %v", cpuRuns)
	}
	gpuRuns := k.RunningOn(platform.GPU)
	if len(gpuRuns) != 1 || !gpuRuns[0].Spoliation {
		t.Fatalf("RunningOn(GPU) = %v", gpuRuns)
	}
	if k.RunOf(2).End != 4 {
		t.Fatalf("RunOf(2).End = %v, want 4", k.RunOf(2).End)
	}
	if got := k.IdleWorkers(platform.CPU); len(got) != 1 || got[0] != 1 {
		t.Fatalf("IdleWorkers(CPU) = %v", got)
	}
}

func TestKernelAbort(t *testing.T) {
	pl := platform.NewPlatform(1, 1)
	k := NewKernel(pl)
	k.Start(0, task(0, 10, 1), false)
	// GPU finishes something at t=2 then spoliates the CPU task.
	k.Start(1, task(1, 9, 2), false)
	k.CompleteNext() // GPU done at 2
	victim := k.Abort(0)
	if victim.ID != 0 || k.Busy(0) {
		t.Fatal("abort did not free worker 0")
	}
	k.Start(1, victim, true)
	run, ok := k.CompleteNext()
	if !ok || run.Task.ID != 0 || k.Now != 3 {
		t.Fatalf("spoliated run completed %+v at %v, want task 0 at 3", run, k.Now)
	}
	s := k.Schedule()
	if s.SpoliationCount() != 1 {
		t.Fatalf("SpoliationCount = %d, want 1", s.SpoliationCount())
	}
	aborted := s.Entries[0]
	if !aborted.Aborted || aborted.End != 2 {
		t.Fatalf("aborted entry = %+v", aborted)
	}
	in := platform.Instance{task(0, 10, 1), task(1, 9, 2)}
	if err := s.Validate(in, nil); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	if ms := s.Makespan(); ms != 3 {
		t.Fatalf("makespan = %v, want 3", ms)
	}
}

func TestKernelPanics(t *testing.T) {
	pl := platform.NewPlatform(1, 0)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	k := NewKernel(pl)
	mustPanic("RunOf idle", func() { k.RunOf(0) })
	mustPanic("Abort idle", func() { k.Abort(0) })
	k.Start(0, task(0, 1, 1), false)
	mustPanic("double start", func() { k.Start(0, task(1, 1, 1), false) })
}

func buildSchedule() (*Schedule, platform.Instance) {
	pl := platform.NewPlatform(1, 1)
	in := platform.Instance{task(0, 4, 1), task(1, 2, 1)}
	s := &Schedule{Platform: pl, Entries: []Entry{
		{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 0, End: 1},
		{TaskID: 1, Worker: 0, Kind: platform.CPU, Start: 0, End: 2},
	}}
	return s, in
}

func TestScheduleMetrics(t *testing.T) {
	s, in := buildSchedule()
	if ms := s.Makespan(); ms != 2 {
		t.Fatalf("makespan = %v, want 2", ms)
	}
	if got := s.BusyTime(platform.CPU); got != 2 {
		t.Errorf("BusyTime(CPU) = %v, want 2", got)
	}
	if got := s.IdleTime(platform.GPU); got != 1 {
		t.Errorf("IdleTime(GPU) = %v, want 1", got)
	}
	if got := s.EquivalentAccel(in, platform.GPU); got != 4 {
		t.Errorf("EquivalentAccel(GPU) = %v, want 4", got)
	}
	if got := s.EquivalentAccel(in, platform.CPU); got != 2 {
		t.Errorf("EquivalentAccel(CPU) = %v, want 2", got)
	}
	if got := s.NormalizedIdleTime(platform.GPU, 2); got != 0.5 {
		t.Errorf("NormalizedIdleTime = %v, want 0.5", got)
	}
	if !math.IsNaN(s.NormalizedIdleTime(platform.GPU, 0)) {
		t.Error("NormalizedIdleTime with zero usage should be NaN")
	}
	if n := len(s.SuccessfulEntries()); n != 2 {
		t.Errorf("SuccessfulEntries = %d, want 2", n)
	}
}

func TestValidateCatchesBadSchedules(t *testing.T) {
	pl := platform.NewPlatform(1, 1)
	in := platform.Instance{task(0, 4, 1), task(1, 2, 1)}
	cases := []struct {
		name    string
		entries []Entry
	}{
		{"bad worker", []Entry{{TaskID: 0, Worker: 9, Kind: platform.GPU, Start: 0, End: 1}}},
		{"kind mismatch", []Entry{{TaskID: 0, Worker: 0, Kind: platform.GPU, Start: 0, End: 1}}},
		{"unknown task", []Entry{{TaskID: 7, Worker: 1, Kind: platform.GPU, Start: 0, End: 1}}},
		{"wrong duration", []Entry{
			{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 0, End: 3},
			{TaskID: 1, Worker: 0, Kind: platform.CPU, Start: 0, End: 2},
		}},
		{"missing task", []Entry{{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 0, End: 1}}},
		{"double success", []Entry{
			{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 0, End: 1},
			{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 1, End: 2},
			{TaskID: 1, Worker: 0, Kind: platform.CPU, Start: 0, End: 2},
		}},
		{"overlap", []Entry{
			{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 0, End: 1},
			{TaskID: 1, Worker: 1, Kind: platform.GPU, Start: 0.5, End: 1.5},
		}},
		{"negative start", []Entry{
			{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: -1, End: 0},
			{TaskID: 1, Worker: 0, Kind: platform.CPU, Start: 0, End: 2},
		}},
		{"aborted too long", []Entry{
			{TaskID: 0, Worker: 0, Kind: platform.CPU, Start: 0, End: 6, Aborted: true},
			{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 6, End: 7},
			{TaskID: 1, Worker: 0, Kind: platform.CPU, Start: 6, End: 8},
		}},
		{"aborted after success", []Entry{
			{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 0, End: 1},
			{TaskID: 0, Worker: 0, Kind: platform.CPU, Start: 0, End: 2, Aborted: true},
			{TaskID: 1, Worker: 0, Kind: platform.CPU, Start: 2, End: 4},
		}},
	}
	for _, c := range cases {
		s := &Schedule{Platform: pl, Entries: c.entries}
		if err := s.Validate(in, nil); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestValidateSpoliationProfit(t *testing.T) {
	pl := platform.NewPlatform(1, 1)
	// Profitable spoliation: victim would finish on CPU at 4, the GPU
	// restart at 0.5 finishes at 1.5.
	good := &Schedule{Platform: pl, Entries: []Entry{
		{TaskID: 0, Worker: 0, Kind: platform.CPU, Start: 0, End: 0.5, Aborted: true},
		{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 0.5, End: 1.5, Spoliation: true},
	}}
	if err := good.Validate(platform.Instance{task(0, 4, 1)}, nil); err != nil {
		t.Fatalf("profitable spoliation rejected: %v", err)
	}
	cases := []struct {
		name string
		in   platform.Instance
		s    []Entry
		want string
	}{
		{
			// Restart at 0.5 would finish at 4.5, the victim at 1.
			"unprofitable", platform.Instance{task(0, 1, 4)},
			[]Entry{
				{TaskID: 0, Worker: 0, Kind: platform.CPU, Start: 0, End: 0.5, Aborted: true},
				{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 0.5, End: 4.5, Spoliation: true},
			},
			"without profit",
		},
		{
			// Both completions land at exactly 2; the rule is strict.
			"equal completion", platform.Instance{task(0, 2, 1.5)},
			[]Entry{
				{TaskID: 0, Worker: 0, Kind: platform.CPU, Start: 0, End: 0.5, Aborted: true},
				{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 0.5, End: 2, Spoliation: true},
			},
			"without profit",
		},
		{
			// The later GPU run is not flagged as a spoliation restart.
			"unflagged restart", platform.Instance{task(0, 4, 1)},
			[]Entry{
				{TaskID: 0, Worker: 0, Kind: platform.CPU, Start: 0, End: 0.5, Aborted: true},
				{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 0.5, End: 1.5},
			},
			"no spoliation restart",
		},
		{
			// A restart exists but not at the abort instant.
			"late restart", platform.Instance{task(0, 4, 1)},
			[]Entry{
				{TaskID: 0, Worker: 0, Kind: platform.CPU, Start: 0, End: 0.5, Aborted: true},
				{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 1, End: 2, Spoliation: true},
			},
			"no spoliation restart",
		},
	}
	for _, c := range cases {
		s := &Schedule{Platform: pl, Entries: c.s}
		err := s.Validate(c.in, nil)
		if err == nil {
			t.Errorf("%s: expected validation error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestValidateDAGDependencies(t *testing.T) {
	g := dag.New()
	a := g.AddTask(task(0, 1, 1))
	b := g.AddTask(task(1, 1, 1))
	g.AddEdge(a, b)
	pl := platform.NewPlatform(2, 0)
	ok := &Schedule{Platform: pl, Entries: []Entry{
		{TaskID: a, Worker: 0, Kind: platform.CPU, Start: 0, End: 1},
		{TaskID: b, Worker: 1, Kind: platform.CPU, Start: 1, End: 2},
	}}
	if err := ok.Validate(g.Tasks(), g); err != nil {
		t.Fatalf("valid DAG schedule rejected: %v", err)
	}
	bad := &Schedule{Platform: pl, Entries: []Entry{
		{TaskID: a, Worker: 0, Kind: platform.CPU, Start: 0, End: 1},
		{TaskID: b, Worker: 1, Kind: platform.CPU, Start: 0.5, End: 1.5},
	}}
	if err := bad.Validate(g.Tasks(), g); err == nil {
		t.Error("dependency violation not detected")
	}
}

func TestGanttAndCSV(t *testing.T) {
	s, _ := buildSchedule()
	gantt := s.Gantt(40)
	if !strings.Contains(gantt, "CPU0") || !strings.Contains(gantt, "GPU0") {
		t.Errorf("gantt missing worker rows:\n%s", gantt)
	}
	empty := &Schedule{Platform: platform.NewPlatform(1, 0)}
	if !strings.Contains(empty.Gantt(5), "empty") {
		t.Error("empty gantt should say so")
	}
	csv := s.CSV()
	if !strings.HasPrefix(csv, "task,worker,kind") || !strings.Contains(csv, "0,1,GPU") {
		t.Errorf("csv wrong:\n%s", csv)
	}
}

func TestAssignedTasksSkipsAbortedAndUnknown(t *testing.T) {
	pl := platform.NewPlatform(1, 1)
	in := platform.Instance{task(0, 4, 1)}
	s := &Schedule{Platform: pl, Entries: []Entry{
		{TaskID: 0, Worker: 0, Kind: platform.CPU, Start: 0, End: 2, Aborted: true},
		{TaskID: 0, Worker: 1, Kind: platform.GPU, Start: 2, End: 3, Spoliation: true},
		{TaskID: 5, Worker: 1, Kind: platform.GPU, Start: 3, End: 4}, // not in instance
	}}
	got := s.AssignedTasks(in)
	if len(got[platform.GPU]) != 1 || len(got[platform.CPU]) != 0 {
		t.Errorf("AssignedTasks = %v", got)
	}
}

package sim

import (
	"fmt"
	"math"

	"repro/internal/platform"
)

// Running describes a task currently executing on a worker.
type Running struct {
	Worker int
	Task   platform.Task
	Start  float64
	// End is the actual completion time of the run (when the completion
	// event will fire).
	End float64
	// EstEnd is the completion time the scheduler believes in, computed
	// from the task's nominal processing time. It equals End unless the
	// run was started with StartTimed and a different actual duration
	// (estimation-noise experiments); policies must base spoliation
	// decisions on EstEnd, since a real scheduler never knows End.
	EstEnd float64
	// Spoliation marks runs started by a spoliation.
	Spoliation bool
}

// Kernel is the discrete-event core driving a simulation: it tracks worker
// occupancy, advances virtual time to completion events, and records every
// execution attempt into a Schedule. Scheduling policies (HeteroPrio,
// DualHP, ...) sit on top and decide which task each idle worker starts.
type Kernel struct {
	P   platform.Platform
	Now float64

	busy  []bool
	runs  []Running // valid when busy[w]
	entry []int     // index into sched.Entries for the active run
	sched *Schedule
	nBusy int

	// Scratch buffers behind RunningOnShared/IdleWorkersShared: sized to
	// the worker count once, filled by index, never grown — the event
	// loops query occupancy every decision round and must not allocate.
	runScratch  []Running
	idleScratch []int
}

// NewKernel returns a kernel at time zero with all workers idle.
func NewKernel(pl platform.Platform) *Kernel {
	return &Kernel{
		P:           pl,
		busy:        make([]bool, pl.Workers()),
		runs:        make([]Running, pl.Workers()),
		entry:       make([]int, pl.Workers()),
		sched:       &Schedule{Platform: pl},
		runScratch:  make([]Running, pl.Workers()),
		idleScratch: make([]int, pl.Workers()),
	}
}

// Schedule returns the trace recorded so far. It remains owned by the
// kernel until the simulation finishes.
func (k *Kernel) Schedule() *Schedule { return k.sched }

// Busy reports whether worker w is currently executing a task.
func (k *Kernel) Busy(w int) bool { return k.busy[w] }

// NumBusy returns the number of busy workers.
func (k *Kernel) NumBusy() int { return k.nBusy }

// RunningOn returns the runs currently active on workers of class kind.
// The slice is freshly allocated; hot loops use RunningOnShared.
func (k *Kernel) RunningOn(kind platform.Kind) []Running {
	shared := k.RunningOnShared(kind)
	out := make([]Running, len(shared))
	copy(out, shared)
	return out
}

// RunningOnShared is the allocation-free form of RunningOn: the returned
// slice aliases a kernel-owned scratch buffer and is overwritten by the
// next call (to either Shared accessor's buffer owner). Callers may
// reorder it in place but must not retain it across kernel calls.
//
//hplint:hotpath
func (k *Kernel) RunningOnShared(kind platform.Kind) []Running {
	lo, hi := k.P.KindRange(kind)
	n := 0
	for w := lo; w < hi; w++ {
		if k.busy[w] {
			k.runScratch[n] = k.runs[w]
			n++
		}
	}
	return k.runScratch[:n]
}

// RunOf returns the active run on worker w; it panics if w is idle.
func (k *Kernel) RunOf(w int) Running {
	if !k.busy[w] {
		panic(fmt.Sprintf("sim: worker %d is idle", w))
	}
	return k.runs[w]
}

// IdleWorkers returns the idle workers of class kind in increasing index
// order. The slice is freshly allocated; hot loops use IdleWorkersShared.
func (k *Kernel) IdleWorkers(kind platform.Kind) []int {
	shared := k.IdleWorkersShared(kind)
	out := make([]int, len(shared))
	copy(out, shared)
	return out
}

// IdleWorkersShared is the allocation-free form of IdleWorkers: the
// returned slice aliases a kernel-owned scratch buffer and is overwritten
// by the next call.
//
//hplint:hotpath
func (k *Kernel) IdleWorkersShared(kind platform.Kind) []int {
	lo, hi := k.P.KindRange(kind)
	n := 0
	for w := lo; w < hi; w++ {
		if !k.busy[w] {
			k.idleScratch[n] = w
			n++
		}
	}
	return k.idleScratch[:n]
}

// Start begins executing task t on idle worker w at the current time,
// with the actual duration equal to the task's nominal processing time.
func (k *Kernel) Start(w int, t platform.Task, spoliation bool) {
	k.StartTimed(w, t, t.Time(k.P.KindOf(w)), spoliation)
}

// StartTimed begins executing task t on idle worker w with the given
// actual duration, which may differ from the nominal processing time
// (estimation-noise experiments). The recorded entry and the completion
// event use the actual duration; Running.EstEnd keeps the nominal one.
func (k *Kernel) StartTimed(w int, t platform.Task, actual float64, spoliation bool) {
	if k.busy[w] {
		panic(fmt.Sprintf("sim: worker %d already busy with task %d", w, k.runs[w].Task.ID))
	}
	kind := k.P.KindOf(w)
	end := k.Now + actual
	k.busy[w] = true
	k.nBusy++
	k.runs[w] = Running{
		Worker: w, Task: t, Start: k.Now, End: end,
		EstEnd: k.Now + t.Time(kind), Spoliation: spoliation,
	}
	k.entry[w] = len(k.sched.Entries)
	//hplint:allow allocflow one trace entry per run attempt; the recorded schedule is the simulation's product
	k.sched.Entries = append(k.sched.Entries, Entry{
		TaskID:     t.ID,
		Worker:     w,
		Kind:       kind,
		Start:      k.Now,
		End:        end,
		Spoliation: spoliation,
	})
}

// Abort kills the run on worker w at the current time (spoliation victim).
// The recorded entry is truncated and marked aborted; the worker becomes
// idle immediately. It returns the aborted task.
func (k *Kernel) Abort(w int) platform.Task {
	if !k.busy[w] {
		panic(fmt.Sprintf("sim: abort on idle worker %d", w))
	}
	e := &k.sched.Entries[k.entry[w]]
	e.End = k.Now
	e.Aborted = true
	k.busy[w] = false
	k.nBusy--
	return k.runs[w].Task
}

// NextCompletion returns the earliest completion time among busy workers,
// or +Inf when every worker is idle.
func (k *Kernel) NextCompletion() float64 {
	next := math.Inf(1)
	for w, b := range k.busy {
		if b && k.runs[w].End < next {
			next = k.runs[w].End
		}
	}
	return next
}

// CompleteNext advances time to the earliest completion event and retires
// that run, freeing its worker. Ties are broken by the smallest worker
// index so simulations are deterministic. It returns the completed run and
// false when no worker is busy (time does not advance in that case).
func (k *Kernel) CompleteNext() (Running, bool) {
	best := -1
	bestEnd := math.Inf(1)
	for w, b := range k.busy {
		if b && k.runs[w].End < bestEnd {
			best, bestEnd = w, k.runs[w].End
		}
	}
	if best < 0 {
		return Running{}, false
	}
	k.Now = bestEnd
	k.busy[best] = false
	k.nBusy--
	return k.runs[best], true
}

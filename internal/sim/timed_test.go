package sim

import (
	"testing"

	"repro/internal/platform"
)

func TestStartTimedEstEnd(t *testing.T) {
	pl := platform.NewPlatform(1, 1)
	k := NewKernel(pl)
	tk := task(0, 4, 2)
	// Actual duration 6 on the GPU whose nominal time is 2.
	k.StartTimed(1, tk, 6, false)
	run := k.RunOf(1)
	if run.End != 6 {
		t.Errorf("End = %v, want 6 (actual)", run.End)
	}
	if run.EstEnd != 2 {
		t.Errorf("EstEnd = %v, want 2 (nominal)", run.EstEnd)
	}
	done, ok := k.CompleteNext()
	if !ok || k.Now != 6 || done.Task.ID != 0 {
		t.Errorf("completion at %v", k.Now)
	}
}

func TestStartKeepsEstEqualToEnd(t *testing.T) {
	pl := platform.NewPlatform(1, 0)
	k := NewKernel(pl)
	k.Start(0, task(0, 3, 1), false)
	run := k.RunOf(0)
	if run.End != run.EstEnd || run.End != 3 {
		t.Errorf("End/EstEnd = %v/%v, want 3/3", run.End, run.EstEnd)
	}
}

func TestValidateTimedCustomDurations(t *testing.T) {
	pl := platform.NewPlatform(1, 0)
	in := platform.Instance{task(0, 2, 1)}
	s := &Schedule{Platform: pl, Entries: []Entry{
		{TaskID: 0, Worker: 0, Kind: platform.CPU, Start: 0, End: 5},
	}}
	if err := s.Validate(in, nil); err == nil {
		t.Error("nominal validation should reject the 5-unit run")
	}
	actual := func(tk platform.Task, k platform.Kind) float64 { return 5 }
	if err := s.ValidateTimed(in, nil, actual); err != nil {
		t.Errorf("timed validation rejected matching durations: %v", err)
	}
}

func TestValidateRelaxedAllowsLongerRuns(t *testing.T) {
	pl := platform.NewPlatform(1, 0)
	in := platform.Instance{task(0, 2, 1)}
	long := &Schedule{Platform: pl, Entries: []Entry{
		{TaskID: 0, Worker: 0, Kind: platform.CPU, Start: 0, End: 7},
	}}
	if err := long.ValidateRelaxed(in, nil); err != nil {
		t.Errorf("relaxed validation rejected a longer run: %v", err)
	}
	short := &Schedule{Platform: pl, Entries: []Entry{
		{TaskID: 0, Worker: 0, Kind: platform.CPU, Start: 0, End: 0.5},
	}}
	if err := short.ValidateRelaxed(in, nil); err == nil {
		t.Error("relaxed validation accepted a run shorter than nominal")
	}
}

// Package hetero is the public API of the HeteroPrio reproduction: a
// library for scheduling independent tasks and task graphs on
// heterogeneous nodes made of two unrelated resource classes (CPUs and
// GPUs), built around the HeteroPrio affinity-based list scheduling
// algorithm with spoliation of
//
//	Beaumont, Eyraud-Dubois, Kumar — "Approximation Proofs of a Fast and
//	Efficient List Scheduling Algorithm for Task-Based Runtime Systems on
//	Multicores and GPUs", IPDPS 2017.
//
// The package re-exports the core types and algorithms of the internal
// packages as a single import surface:
//
//	pl := hetero.NewPlatform(20, 4)          // 20 CPUs + 4 GPUs
//	in := hetero.Instance{
//	    {ID: 0, Name: "dgemm", CPUTime: 50, GPUTime: 1.7},
//	    {ID: 1, Name: "dpotrf", CPUTime: 12, GPUTime: 7},
//	}
//	res, err := hetero.ScheduleIndependent(in, pl, hetero.Options{})
//	fmt.Println(res.Makespan())
//
// Baseline schedulers (HEFT, DualHP), lower bounds (area bound, DAG
// bound), workload generators (tiled Cholesky/QR/LU) and the paper's
// adversarial worst-case instances are also exposed.
package hetero

import (
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// Core model types.
type (
	// Task is a unit of work with one processing time per resource class.
	Task = platform.Task
	// Instance is an ordered set of independent tasks.
	Instance = platform.Instance
	// Platform is a node with m CPU workers and n GPU workers.
	Platform = platform.Platform
	// Kind is a resource class (CPU or GPU).
	Kind = platform.Kind
	// Schedule is a full execution trace, including aborted (spoliated)
	// runs, with validation and the paper's metrics.
	Schedule = sim.Schedule
	// Entry is one execution attempt within a Schedule.
	Entry = sim.Entry
	// Graph is a task DAG.
	Graph = dag.Graph
	// Weighting selects how node weights derive from the two processing
	// times (avg, min, cpu, gpu) in priority computations.
	Weighting = dag.Weighting
	// Options configures a HeteroPrio run.
	Options = core.Options
	// Result is the outcome of a HeteroPrio run (final schedule, the
	// no-spoliation schedule, first idle time, spoliation count).
	Result = core.Result
	// Ranking selects DualHP's intra-class ordering (fifo, avg, min).
	Ranking = sched.Ranking
	// AreaSolution is the witnessing fractional assignment of the area
	// bound.
	AreaSolution = bounds.AreaSolution
)

// Resource classes.
const (
	CPU = platform.CPU
	GPU = platform.GPU
)

// Priority weighting schemes.
const (
	WeightAvg = dag.WeightAvg
	WeightMin = dag.WeightMin
	WeightCPU = dag.WeightCPU
	WeightGPU = dag.WeightGPU
)

// DualHP rankings.
const (
	RankFIFO = sched.RankFIFO
	RankAvg  = sched.RankAvg
	RankMin  = sched.RankMin
)

// NewPlatform returns a platform with m CPU workers and n GPU workers.
func NewPlatform(m, n int) Platform { return platform.NewPlatform(m, n) }

// NewGraph returns an empty task graph.
func NewGraph() *Graph { return dag.New() }

// ScheduleIndependent runs HeteroPrio (Algorithm 1 of the paper, with
// spoliation) on a set of independent tasks.
func ScheduleIndependent(in Instance, pl Platform, opt Options) (Result, error) {
	return core.ScheduleIndependent(in, pl, opt)
}

// ScheduleDAG runs the DAG variant of HeteroPrio: the independent-task
// rule applied to the set of currently ready tasks, with spoliation.
func ScheduleDAG(g *Graph, pl Platform, opt Options) (Result, error) {
	return core.ScheduleDAG(g, pl, opt)
}

// HEFT schedules a task graph with the Heterogeneous Earliest Finish Time
// baseline (insertion-based, zero communication costs).
func HEFT(g *Graph, pl Platform, w Weighting) (*Schedule, error) {
	return sched.HEFT(g, pl, w)
}

// HEFTIndependent schedules an independent instance with HEFT.
func HEFTIndependent(in Instance, pl Platform, w Weighting) (*Schedule, error) {
	return sched.HEFTIndependent(in, pl, w)
}

// DualHPIndependent schedules an independent instance with the DualHP
// dual-approximation baseline (2-approximation).
func DualHPIndependent(in Instance, pl Platform) (*Schedule, error) {
	return sched.DualHPIndependent(in, pl)
}

// DualHPDAG schedules a task graph with the DAG adaptation of DualHP,
// assigning bottom-level priorities per the ranking scheme.
func DualHPDAG(g *Graph, pl Platform, rank Ranking) (*Schedule, error) {
	return sched.DualHPDAGWithPriorities(g, pl, rank)
}

// OptimalIndependent computes the exact optimal makespan of a small
// independent instance (branch and bound; see sched.MaxExactTasks).
func OptimalIndependent(in Instance, pl Platform) (float64, error) {
	return sched.OptimalIndependent(in, pl)
}

// AreaBound returns the divisible-load lower bound of Section 4.2.
func AreaBound(in Instance, pl Platform) (float64, error) {
	return bounds.AreaBound(in, pl)
}

// Area returns the area bound together with its fractional assignment.
func Area(in Instance, pl Platform) (AreaSolution, error) {
	return bounds.Area(in, pl)
}

// LowerBound returns max(area bound, max_i min(p_i, q_i)).
func LowerBound(in Instance, pl Platform) (float64, error) {
	return bounds.Lower(in, pl)
}

// DAGLowerBound returns the dependency-aware lower bound (area bound
// strengthened with the min-duration critical path).
func DAGLowerBound(g *Graph, pl Platform) (float64, error) {
	return bounds.DAGLower(g, pl)
}

// DAGLowerBoundRefined additionally sweeps dependency-restricted area
// arguments over the top and bottom levels (see bounds.DAGLowerRefined);
// always at least DAGLowerBound.
func DAGLowerBoundRefined(g *Graph, pl Platform) (float64, error) {
	return bounds.DAGLowerRefined(g, pl)
}

// Cholesky, QR and LU build the tiled factorization task graphs of the
// paper's evaluation, with the Table 1 timing model.
func Cholesky(N int) *Graph { return workloads.Cholesky(N) }

// QR builds the tiled QR factorization task graph.
func QR(N int) *Graph { return workloads.QR(N) }

// LU builds the tiled LU factorization task graph.
func LU(N int) *Graph { return workloads.LU(N) }

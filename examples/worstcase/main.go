// Worstcase: reproduce the paper's tight approximation-ratio examples
// (Table 2): the golden-ratio instance of Theorem 8, the (m,1) family of
// Theorem 11 and the (m,n) family of Theorem 14, showing the HeteroPrio
// makespans hitting the predicted adversarial values.
package main

import (
	"fmt"
	"log"
	"math"

	hetero "repro"
	"repro/internal/workloads"
)

func main() {
	phi := workloads.Phi

	// Theorem 8: 1 CPU + 1 GPU, two tasks, ratio exactly phi.
	{
		in, pl := workloads.Theorem8Instance()
		res, err := hetero.ScheduleIndependent(in, pl, hetero.Options{})
		if err != nil {
			log.Fatal(err)
		}
		opt, err := hetero.OptimalIndependent(in, pl)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Theorem 8  (1 CPU, 1 GPU):   HeteroPrio %.6f, optimum %.6f, ratio %.6f (phi = %.6f)\n",
			res.Makespan(), opt, res.Makespan()/opt, phi)
		fmt.Print(res.Schedule.Gantt(60))
		fmt.Println()
	}

	// Theorem 11: m CPUs + 1 GPU, ratio x + phi -> 1 + phi.
	fmt.Println("Theorem 11 (m CPUs, 1 GPU): ratio x + phi -> 1 + phi =", 1+phi)
	for _, m := range []int{5, 20, 80} {
		in, pl := workloads.Theorem11Instance(m, 8)
		res, err := hetero.ScheduleIndependent(in, pl, hetero.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  m=%3d: HeteroPrio %.6f vs optimum 1  (predicted %.6f)\n",
			m, res.Makespan(), workloads.Theorem11ExpectedMakespan(m))
	}
	fmt.Println()

	// Theorem 14: n GPUs + n^2 CPUs, ratio -> 2 + 2/sqrt(3).
	fmt.Printf("Theorem 14 (m CPUs, n GPUs): ratio -> 2 + 2/sqrt(3) = %.6f\n", 2+2/math.Sqrt(3))
	for _, k := range []int{1, 2, 3} {
		in, pl := workloads.Theorem14Instance(k, 4)
		res, err := hetero.ScheduleIndependent(in, pl, hetero.Options{})
		if err != nil {
			log.Fatal(err)
		}
		opt := workloads.Theorem14OptimalMakespan(k)
		fmt.Printf("  n=%3d GPUs, m=%4d CPUs: ratio %.6f (predicted %.6f), %d spoliations\n",
			pl.GPUs, pl.CPUs, res.Makespan()/opt,
			workloads.Theorem14ExpectedMakespan(k)/opt, res.Spoliations)
	}
}

// STF: program a task graph the way StarPU applications are written —
// submit kernels sequentially with data-access declarations and let the
// runtime infer every dependency — then schedule it with HeteroPrio and
// compare against HEFT.
package main

import (
	"fmt"
	"log"

	hetero "repro"
)

func main() {
	// A 2D wavefront: cell (i,j) reads its north and west neighbours and
	// updates itself. Interior cells accelerate well on the GPU; border
	// cells (heavier control flow) do not.
	const n = 8
	f := hetero.NewFlow()
	hs := make([][]hetero.DataHandle, n)
	for i := 0; i < n; i++ {
		hs[i] = make([]hetero.DataHandle, n)
		for j := 0; j < n; j++ {
			hs[i][j] = f.Data(fmt.Sprintf("cell(%d,%d)", i, j))
		}
	}

	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			t := hetero.Task{Name: fmt.Sprintf("update(%d,%d)", i, j)}
			if i == 0 || j == 0 {
				t.CPUTime, t.GPUTime = 3, 2.5 // border: barely accelerated
			} else {
				t.CPUTime, t.GPUTime = 10, 0.8 // interior: GPU-friendly
			}
			accesses := []hetero.DataAccess{hetero.ReadWriteAccess(hs[i][j])}
			if i > 0 {
				accesses = append(accesses, hetero.ReadAccess(hs[i-1][j]))
			}
			if j > 0 {
				accesses = append(accesses, hetero.ReadAccess(hs[i][j-1]))
			}
			f.MustSubmit(t, accesses...)
		}
	}

	g := f.Graph()
	pl := hetero.NewPlatform(4, 1)
	if _, err := g.AssignBottomLevelPriorities(hetero.WeightMin, pl); err != nil {
		log.Fatal(err)
	}

	hp, err := hetero.ScheduleDAG(g, pl, hetero.Options{UsePriorities: true})
	if err != nil {
		log.Fatal(err)
	}
	heft, err := hetero.HEFT(g, pl, hetero.WeightAvg)
	if err != nil {
		log.Fatal(err)
	}
	lb, err := hetero.DAGLowerBound(g, pl)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wavefront %dx%d: %d tasks, %d inferred dependencies on %s\n", n, n, g.Len(), g.Edges(), pl)
	fmt.Printf("  HeteroPrio: %7.2f (ratio %.3f, %d spoliations)\n", hp.Makespan(), hp.Makespan()/lb, hp.Spoliations)
	fmt.Printf("  HEFT:       %7.2f (ratio %.3f)\n", heft.Makespan(), heft.Makespan()/lb)
	fmt.Printf("  bound:      %7.2f\n", lb)
}

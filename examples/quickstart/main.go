// Quickstart: schedule a handful of independent tasks with HeteroPrio on a
// small CPU+GPU node and inspect the result.
package main

import (
	"fmt"
	"log"

	hetero "repro"
)

func main() {
	// A node with 2 CPU cores and 1 GPU.
	pl := hetero.NewPlatform(2, 1)

	// Five independent tasks. CPUTime is the duration on one CPU core,
	// GPUTime on one GPU; the ratio is the task's acceleration factor.
	in := hetero.Instance{
		{ID: 0, Name: "dgemm-0", CPUTime: 50, GPUTime: 1.74}, // loves the GPU
		{ID: 1, Name: "dgemm-1", CPUTime: 50, GPUTime: 1.74},
		{ID: 2, Name: "dsyrk-0", CPUTime: 25, GPUTime: 0.93},
		{ID: 3, Name: "dpotrf-0", CPUTime: 11.8, GPUTime: 6.9}, // barely accelerated
		{ID: 4, Name: "dtrsm-0", CPUTime: 28, GPUTime: 3.2},
	}

	// Run HeteroPrio (Algorithm 1 of the paper) with spoliation enabled.
	res, err := hetero.ScheduleIndependent(in, pl, hetero.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("makespan: %.3f ms (first idle at %.3f ms, %d spoliations)\n",
		res.Makespan(), res.TFirstIdle, res.Spoliations)

	// Compare against the area bound, the paper's lower bound on any
	// schedule (Section 4.2).
	lb, err := hetero.LowerBound(in, pl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lower bound: %.3f ms  ->  ratio %.3f\n", lb, res.Makespan()/lb)

	// Where did everything run?
	fmt.Println("\nschedule:")
	for _, e := range res.Schedule.Entries {
		state := "ok"
		if e.Aborted {
			state = "aborted (spoliated)"
		} else if e.Spoliation {
			state = "restarted by spoliation"
		}
		fmt.Printf("  task %d on %-4s  [%7.3f, %7.3f)  %s\n",
			e.TaskID, pl.WorkerName(e.Worker), e.Start, e.End, state)
	}

	fmt.Println("\nGantt:")
	fmt.Print(res.Schedule.Gantt(72))
}

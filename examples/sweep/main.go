// Sweep: a miniature Figure 6 — schedule the kernel instances of tiled
// Cholesky/QR/LU as independent tasks for a range of tile counts and print
// each algorithm's ratio to the area bound. Shows HeteroPrio's near-optimal
// behaviour for large N and its edge over DualHP at small N.
package main

import (
	"fmt"
	"log"

	"repro/internal/expr"
)

func main() {
	pl := expr.PaperPlatform()
	ns := []int{4, 8, 12, 16, 24, 32}

	rows, err := expr.Fig6(ns, pl)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Independent kernel instances on %s — ratio to the area bound\n\n", pl)
	fmt.Printf("%-10s %4s %7s", "kernel", "N", "tasks")
	for _, alg := range expr.IndepAlgorithms() {
		fmt.Printf(" %11s", alg)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-10s %4d %7d", r.Kernel, r.N, r.Tasks)
		for _, alg := range expr.IndepAlgorithms() {
			fmt.Printf(" %11.4f", r.Ratio[alg])
		}
		fmt.Println()
	}

	// Summarize the paper's headline observation: HeteroPrio is within a
	// few percent of the bound for large N while HEFT is not.
	last := rows[len(rows)-1]
	fmt.Printf("\nAt %s N=%d, HeteroPrio is %.1f%% above the bound; HEFT %.1f%%.\n",
		last.Kernel, last.N,
		100*(last.Ratio["HeteroPrio"]-1), 100*(last.Ratio["HEFT"]-1))
}

// Cholesky: schedule a tiled Cholesky factorization task graph (the
// paper's flagship workload) with HeteroPrio, HEFT and DualHP on the
// paper's 20-CPU + 4-GPU node, and compare them to the dependency-aware
// lower bound.
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	hetero "repro"
)

func main() {
	N := 16
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil {
			log.Fatalf("usage: cholesky [tiles]; got %q", os.Args[1])
		}
		N = v
	}

	pl := hetero.NewPlatform(20, 4)
	g := hetero.Cholesky(N)
	fmt.Printf("Cholesky N=%d: %d tasks, %d dependencies, %s\n\n", N, g.Len(), g.Edges(), pl)

	lb, err := hetero.DAGLowerBound(g, pl)
	if err != nil {
		log.Fatal(err)
	}

	// HeteroPrio with min bottom-level priorities (the paper's best
	// configuration).
	if _, err := g.AssignBottomLevelPriorities(hetero.WeightMin, pl); err != nil {
		log.Fatal(err)
	}
	hp, err := hetero.ScheduleDAG(g, pl, hetero.Options{UsePriorities: true})
	if err != nil {
		log.Fatal(err)
	}

	heft, err := hetero.HEFT(g, pl, hetero.WeightAvg)
	if err != nil {
		log.Fatal(err)
	}

	dual, err := hetero.DualHPDAG(g, pl, hetero.RankMin)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s %12s %8s %14s %14s\n", "algorithm", "makespan", "ratio", "CPU eq. accel", "GPU eq. accel")
	report := func(name string, s *hetero.Schedule) {
		fmt.Printf("%-18s %9.1f ms %8.3f %14.2f %14.2f\n",
			name, s.Makespan(), s.Makespan()/lb,
			s.EquivalentAccel(g.Tasks(), hetero.CPU),
			s.EquivalentAccel(g.Tasks(), hetero.GPU))
	}
	report("HeteroPrio-min", hp.Schedule)
	report("HEFT-avg", heft)
	report("DualHP-min", dual)
	fmt.Printf("\nlower bound: %.1f ms; HeteroPrio spoliated %d runs\n", lb, hp.Spoliations)

	// A good affinity-aware schedule keeps the CPU equivalent acceleration
	// factor low (CPUs run the tasks the GPU is not much better at) and
	// the GPU one high — compare the columns above, this is Figure 8's
	// message.
}

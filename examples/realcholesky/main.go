// Realcholesky: factor a real SPD matrix with the real-time HeteroPrio
// runtime — the miniature of the StarPU integration the paper's conclusion
// announces. Worker goroutines of the "CPU class" run naive kernels and
// the "GPU class" runs blocked, loop-reordered kernels, so the
// acceleration factors are real and measured, not simulated. The result
// is verified numerically against a dense reference factorization.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"strconv"

	"repro/internal/runtime"
	"repro/internal/tile"
)

func main() {
	n, b := 480, 96
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v%b != 0 {
			log.Fatalf("usage: realcholesky [size divisible by %d]", b)
		}
		n = v
	}
	rng := rand.New(rand.NewSource(42))

	fmt.Printf("calibrating kernels (tile %dx%d)...\n", b, b)
	est := runtime.CalibrateCholesky(b, rng)
	fmt.Printf("  POTRF: ref %.3fms  fast %.3fms  (accel %.1fx)\n", est.POTRF[0]*1e3, est.POTRF[1]*1e3, est.POTRF[0]/est.POTRF[1])
	fmt.Printf("  TRSM:  ref %.3fms  fast %.3fms  (accel %.1fx)\n", est.TRSM[0]*1e3, est.TRSM[1]*1e3, est.TRSM[0]/est.TRSM[1])
	fmt.Printf("  SYRK:  ref %.3fms  fast %.3fms  (accel %.1fx)\n", est.SYRK[0]*1e3, est.SYRK[1]*1e3, est.SYRK[0]/est.SYRK[1])
	fmt.Printf("  GEMM:  ref %.3fms  fast %.3fms  (accel %.1fx)\n", est.GEMM[0]*1e3, est.GEMM[1]*1e3, est.GEMM[0]/est.GEMM[1])

	fmt.Printf("\nfactoring a %dx%d SPD matrix (%d tiles of %d)...\n", n, n, (n/b)*(n/b), b)
	a := tile.RandomSPD(n, rng)
	want, err := tile.CholeskyDense(a)
	if err != nil {
		log.Fatal(err)
	}

	td, err := tile.NewTiled(a, b)
	if err != nil {
		log.Fatal(err)
	}
	g, err := runtime.CholeskyGraph(td, est)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := runtime.Run(g, runtime.Config{
		CPUWorkers:    3, // slow class: naive kernels
		GPUWorkers:    1, // fast class: blocked kernels
		UsePriorities: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	got := td.Assemble()
	var maxErr float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			maxErr = math.Max(maxErr, math.Abs(got.At(i, j)-want.At(i, j)))
		}
	}

	fmt.Printf("\n%d tasks in %v, %d spoliations\n", g.Len(), rep.Wall, rep.Spoliations)
	fmt.Printf("max |L - L_ref| = %.2e  (%s)\n", maxErr, verdict(maxErr))
	fmt.Printf("\nmeasured trace (x = aborted/spoliated run):\n")
	fmt.Print(rep.Trace.Gantt(100))
}

func verdict(e float64) string {
	if e < 1e-8 {
		return "numerically correct"
	}
	return "WRONG"
}

package hetero

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"testing"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (on reduced sweeps so `go test -bench=.` stays fast; the
// cmd/experiments binary runs the full paper sweep) plus the ablation and
// scheduling-overhead studies called out in DESIGN.md.

// BenchmarkTable1AccelerationFactors regenerates Table 1.
func BenchmarkTable1AccelerationFactors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := expr.Table1Table()
		if len(tb.Rows) != 4 {
			b.Fatal("table 1 wrong")
		}
	}
}

// BenchmarkTable2WorstCases regenerates Table 2: HeteroPrio on the
// adversarial instances of Theorems 8, 11 and 14.
func BenchmarkTable2WorstCases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expr.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("table 2 wrong")
		}
	}
}

// BenchmarkFig6Independent regenerates Figure 6 (independent tasks, ratio
// to the area bound) on a reduced N sweep.
func BenchmarkFig6Independent(b *testing.B) {
	pl := expr.PaperPlatform()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Fig6(expr.SmallNs(), pl); err != nil {
			b.Fatal(err)
		}
	}
}

// fig7Rows caches one reduced Figure 7/8/9 run for the three view benches.
func fig7Rows(b *testing.B) []expr.Fig7Row {
	b.Helper()
	rows, err := expr.Fig7(expr.SmallNs(), expr.PaperPlatform())
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

// BenchmarkFig7DAGs regenerates Figure 7 (DAGs, ratio to the lower bound).
func BenchmarkFig7DAGs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := fig7Rows(b)
		if len(expr.Fig7Table(rows).Rows) == 0 {
			b.Fatal("fig 7 empty")
		}
	}
}

// BenchmarkFig8EquivalentAccel regenerates Figure 8 from the Figure 7 run.
func BenchmarkFig8EquivalentAccel(b *testing.B) {
	rows := fig7Rows(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(expr.Fig8Table(rows).Rows) == 0 {
			b.Fatal("fig 8 empty")
		}
	}
}

// BenchmarkFig9IdleTime regenerates Figure 9 from the Figure 7 run.
func BenchmarkFig9IdleTime(b *testing.B) {
	rows := fig7Rows(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(expr.Fig9Table(rows).Rows) == 0 {
			b.Fatal("fig 9 empty")
		}
	}
}

// BenchmarkAblationSpoliation runs the spoliation/priority ablation.
func BenchmarkAblationSpoliation(b *testing.B) {
	pl := expr.PaperPlatform()
	for i := 0; i < b.N; i++ {
		if _, err := expr.Ablation([]int{4, 8}, pl); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoundStress checks Theorem 12's bound on a stream of random
// instances against the combined lower bound (sanity stress, not a proof).
func BenchmarkBoundStress(b *testing.B) {
	pl := platform.NewPlatform(8, 3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		in := workloads.LogNormalAccelInstance(60, 1, 1.2, rng)
		res, err := core.ScheduleIndependent(in, pl, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		lb, err := bounds.Lower(in, pl)
		if err != nil {
			b.Fatal(err)
		}
		// The ratio to the *lower bound* can exceed the ratio to the
		// optimum, but a blow-up beyond 2+sqrt(2) against the bound on
		// these dense instances would indicate a regression.
		if res.Makespan() > 3.42*lb {
			b.Fatalf("iteration %d: ratio %v", i, res.Makespan()/lb)
		}
	}
}

// Scheduler overhead benches: the cost of computing a full schedule per
// task, supporting the paper's low-complexity claim for HeteroPrio
// (Sections 1 and 6). Metric: ns per scheduled task.

func overheadGraph(b *testing.B) *dag.Graph {
	b.Helper()
	return workloads.Cholesky(16) // 816 tasks
}

func BenchmarkSchedulerOverheadHeteroPrio(b *testing.B) {
	g := overheadGraph(b)
	pl := expr.PaperPlatform()
	if _, err := g.AssignBottomLevelPriorities(dag.WeightMin, pl); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ScheduleDAG(g, pl, core.Options{UsePriorities: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*g.Len()), "ns/task")
}

func BenchmarkSchedulerOverheadHEFT(b *testing.B) {
	g := overheadGraph(b)
	pl := expr.PaperPlatform()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.HEFT(g, pl, dag.WeightAvg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*g.Len()), "ns/task")
}

func BenchmarkSchedulerOverheadDualHP(b *testing.B) {
	g := overheadGraph(b)
	pl := expr.PaperPlatform()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.DualHPDAGWithPriorities(g, pl, sched.RankMin); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*g.Len()), "ns/task")
}

// Micro-benchmarks of the substrate hot paths.

func BenchmarkAreaBound(b *testing.B) {
	in, err := workloads.IndependentTasks(workloads.FactCholesky, 16)
	if err != nil {
		b.Fatal(err)
	}
	pl := expr.PaperPlatform()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bounds.AreaBound(in, pl); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeteroPrioIndependent(b *testing.B) {
	in, err := workloads.IndependentTasks(workloads.FactCholesky, 16)
	if err != nil {
		b.Fatal(err)
	}
	pl := expr.PaperPlatform()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ScheduleIndependent(in, pl, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleDAGCholesky measures one full DAG schedule of the
// 816-task Cholesky graph with min priorities — the paper's headline
// workload and the benchgate's DAG-path regression probe.
func BenchmarkScheduleDAGCholesky(b *testing.B) {
	g := workloads.Cholesky(16)
	pl := expr.PaperPlatform()
	if _, err := g.AssignBottomLevelPriorities(dag.WeightMin, pl); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ScheduleDAG(g, pl, core.Options{UsePriorities: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleIndependentScaling fans 16 independent-instance cells
// across engine pools of growing width. On a multi-core runner the
// ns/op should drop as workers are added; the benchgate tracks the
// workers-1 and workers-4 points.
func BenchmarkScheduleIndependentScaling(b *testing.B) {
	pl := expr.PaperPlatform()
	for _, w := range []int{1, 2, 4, 8} {
		// "workers=8" rather than "workers-8": a trailing -N is how go test
		// encodes GOMAXPROCS, and cmd/benchgate strips that suffix when
		// normalizing names.
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pool := engine.NewPool(w, nil)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := engine.Map(context.Background(), pool, engine.Job{Cells: 16, Seed: 3},
					func(_ context.Context, c engine.Cell) (float64, error) {
						rng := c.Rand()
						in := workloads.UniformInstance(250, 1, 100, 0.2, 40, rng)
						s, err := core.ScheduleIndependent(in, pl, core.Options{})
						if err != nil {
							return 0, err
						}
						return s.Makespan(), nil
					})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleIndependent measures the cost of the observer hooks on
// a 1000-task instance: "disabled" is the baseline (nil Observer field),
// "nop-observer" has every emission site live but pointed at obs.Nop.
// Compare allocs/op between the two — they must be identical, which
// TestObserverNopZeroAlloc in internal/core enforces on every test run.
func BenchmarkScheduleIndependent(b *testing.B) {
	pl := expr.PaperPlatform()
	rng := rand.New(rand.NewSource(3))
	in := workloads.UniformInstance(1000, 1, 100, 0.2, 40, rng)
	for name, opt := range map[string]core.Options{
		"disabled":     {},
		"nop-observer": {Observer: obs.Nop{}},
	} {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.ScheduleIndependent(in, pl, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleIndependentZoo measures the two cheapest competitor
// schedulers (DESIGN.md §15) on the same 1000-task instance as
// BenchmarkScheduleIndependent: both are a sort plus an O(n log m)
// placement loop, so they belong in the benchgate alongside HeteroPrio —
// a regression here means the zoo's shared plumbing got slower, not that
// an LP or a simulation grew.
func BenchmarkScheduleIndependentZoo(b *testing.B) {
	pl := expr.PaperPlatform()
	rng := rand.New(rand.NewSource(3))
	in := workloads.UniformInstance(1000, 1, 100, 0.2, 40, rng)
	for _, bc := range []struct {
		name string
		run  func(platform.Instance, platform.Platform) (*sim.Schedule, error)
	}{
		{"erls", sched.ERLSIndependent},
		{"clb2c", sched.CLB2CIndependent},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := bc.run(in, pl); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHDRRecord measures the request-latency histogram's hot path:
// one Record per request, lock-free and allocation-free. The benchgate
// pins allocs/op at zero — any boxing or lazy bucket growth sneaking
// into Record shows up as a gate failure, not a latency mystery.
func BenchmarkHDRRecord(b *testing.B) {
	h := obs.NewHDR()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i%1000000 + 1))
	}
}

// BenchmarkRingLookup measures one consistent-hash placement: a binary
// search over the vnode ring for a precomputed key point. This sits on
// the router's per-request path and on every PeerL2 Get/Put, so the gate
// pins it at 0 allocs/op.
func BenchmarkRingLookup(b *testing.B) {
	ring := shard.NewRing([]string{
		"http://r0:8080", "http://r1:8080", "http://r2:8080", "http://r3:8080",
	}, shard.DefaultVNodes)
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += ring.LookupPoint(uint64(i) * 0x9e3779b97f4a7c15)
	}
	if sink < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkRouterCandidates measures the router's full per-request
// placement decision: ring successors plus the cooldown partition, into
// a caller-owned buffer. Gate-pinned at 0 allocs/op — any slice growth
// or boxing on this path multiplies across every proxied request.
func BenchmarkRouterCandidates(b *testing.B) {
	rt, err := shard.NewRouter(shard.RouterConfig{
		Backends: []string{"http://r0:1", "http://r1:1", "http://r2:1", "http://r3:1"},
		Key:      func(r *http.Request) (serve.Key, error) { return serve.Key{}, nil },
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]int, 0, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = rt.Candidates(uint64(i)*0x9e3779b97f4a7c15, buf[:0])
		if len(buf) != 4 {
			b.Fatal("short candidate list")
		}
	}
}

// BenchmarkSpanStartEnd measures a StartChild/End pair in the steady
// state of a long-lived trace: the span comes from the tracer's pool and
// goes back on End, and past the per-trace retention cap nothing is
// appended, so the cycle must be allocation-free (gate-pinned at zero).
func BenchmarkSpanStartEnd(b *testing.B) {
	tr := obs.NewTracer(1)
	root := tr.StartTrace("bench")
	// Warm past the retention cap so the retained-spans append growth is
	// outside the measured loop.
	for i := 0; i < 5000; i++ {
		root.StartChild("phase").End()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := root.StartChild("phase")
		sp.AnnotateInt("iter", int64(i))
		sp.End()
	}
}

package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's gated figures. Allocations are the primary
// signal — they are machine-independent — while ns/op gets a wide
// tolerance band to absorb runner noise.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the checked-in reference (BENCH_baseline.json).
type Baseline struct {
	// Note documents how to regenerate the file.
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func readBaseline(path string) (Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Baseline{}, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return Baseline{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return Baseline{}, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return b, nil
}

func writeBaseline(path string, b Baseline) error {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// benchLine matches one `go test -bench -benchmem` result line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ MB/s)?\s+[0-9.]+ B/op\s+([0-9.]+) allocs/op`)

// gomaxprocsSuffix is the trailing -N go test appends to benchmark names
// when GOMAXPROCS > 1. Sub-benchmark names in this repo use key=value
// segments ("workers=8") precisely so this strip stays unambiguous.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench reads `go test -bench -benchmem` output and returns the
// per-benchmark figures, names normalized. With -count > 1 a benchmark
// appears several times; the minimum ns/op is kept (the least noisy
// estimate of the true cost) along with the minimum allocs/op.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		allocs, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := out[name]; ok {
			if prev.NsPerOp < ns {
				ns = prev.NsPerOp
			}
			if prev.AllocsPerOp < allocs {
				allocs = prev.AllocsPerOp
			}
		}
		out[name] = Result{NsPerOp: ns, AllocsPerOp: allocs}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found (was -benchmem set?)")
	}
	return out, nil
}

// compare gates the run against the baseline and returns one message per
// violation, sorted by benchmark name. A benchmark present in the
// baseline but absent from the run is a violation too — silently losing
// gate coverage is how regressions sneak in. Benchmarks only in the run
// are reported on w as candidates for -update, but do not fail.
func compare(w io.Writer, base Baseline, got map[string]Result, nsTol, allocTol float64) []string {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var fails []string
	for _, name := range names {
		want := base.Benchmarks[name]
		g, ok := got[name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: in baseline but missing from the run", name))
			continue
		}
		if limit := want.NsPerOp * (1 + nsTol); g.NsPerOp > limit {
			fails = append(fails, fmt.Sprintf("%s: %.0f ns/op exceeds baseline %.0f by %+.1f%% (tolerance %.0f%%)",
				name, g.NsPerOp, want.NsPerOp, 100*(g.NsPerOp/want.NsPerOp-1), 100*nsTol))
		}
		// The +0.5 keeps integer jitter out and pins zero-alloc baselines
		// to zero.
		if limit := want.AllocsPerOp*(1+allocTol) + 0.5; g.AllocsPerOp > limit {
			fails = append(fails, fmt.Sprintf("%s: %.0f allocs/op exceeds baseline %.0f by %+.1f%% (tolerance %.0f%%)",
				name, g.AllocsPerOp, want.AllocsPerOp, 100*(g.AllocsPerOp/want.AllocsPerOp-1), 100*allocTol))
		}
	}

	var extras []string
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		fmt.Fprintf(w, "benchgate: note: %s not in baseline (run -update to adopt it)\n", name)
	}
	return fails
}

// summarize prints the per-benchmark comparison table.
func summarize(w io.Writer, base Baseline, got map[string]Result) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g, ok := got[name]
		if !ok {
			continue
		}
		want := base.Benchmarks[name]
		fmt.Fprintf(w, "benchgate: %-55s %12.0f ns/op (base %12.0f, %+6.1f%%)  %8.0f allocs/op (base %8.0f)\n",
			name, g.NsPerOp, want.NsPerOp, 100*(g.NsPerOp/want.NsPerOp-1), g.AllocsPerOp, want.AllocsPerOp)
	}
	var missing []string
	for name := range got {
		if _, ok := base.Benchmarks[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		fmt.Fprintf(w, "benchgate: %d benchmark(s) not in baseline: %s\n", len(missing), strings.Join(missing, ", "))
	}
}

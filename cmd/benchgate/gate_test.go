package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parseFixture(t *testing.T, name string) map[string]Result {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			t.Error(err)
		}
	}()
	got, err := parseBench(f)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestParseBench checks GOMAXPROCS-suffix normalization and the
// min-of-count reduction.
func TestParseBench(t *testing.T) {
	got := parseFixture(t, "ok.txt")
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	r, ok := got["BenchmarkScheduleIndependent/disabled"]
	if !ok {
		t.Fatalf("-8 suffix not stripped: %v", got)
	}
	if r.NsPerOp != 1050000 {
		t.Errorf("min of repeated runs = %v, want 1050000", r.NsPerOp)
	}
	if r.AllocsPerOp != 100 {
		t.Errorf("allocs = %v, want 100", r.AllocsPerOp)
	}
	if r, ok := got["BenchmarkScheduleIndependentScaling/workers=4"]; !ok || r.AllocsPerOp != 5100 {
		t.Errorf("workers=4 entry wrong: %v ok=%v", r, ok)
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := parseBench(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Error("output without bench lines accepted")
	}
}

// TestGateOK: a run within tolerance passes.
func TestGateOK(t *testing.T) {
	base, err := readBaseline(filepath.Join("testdata", "baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	got := parseFixture(t, "ok.txt")
	if fails := compare(io.Discard, base, got, 0.35, 0.10); len(fails) != 0 {
		t.Errorf("in-tolerance run failed the gate: %v", fails)
	}
}

// TestGateCatchesRegressions: a 50% ns/op slowdown, an 20% allocs/op
// growth, and allocations appearing on a zero-alloc baseline all fail.
func TestGateCatchesRegressions(t *testing.T) {
	base, err := readBaseline(filepath.Join("testdata", "baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	got := parseFixture(t, "slow.txt")
	fails := compare(io.Discard, base, got, 0.35, 0.10)
	if len(fails) != 3 {
		t.Fatalf("got %d failures, want 3: %v", len(fails), fails)
	}
	for i, want := range []string{
		"BenchmarkAreaBound: 1 allocs/op",
		"BenchmarkScheduleIndependent/disabled: 1500000 ns/op",
		"BenchmarkScheduleIndependentScaling/workers=4: 6000 allocs/op",
	} {
		if !strings.Contains(fails[i], want) {
			t.Errorf("failure %d = %q, want substring %q", i, fails[i], want)
		}
	}
}

// TestGateMissingBenchmark: losing gate coverage is itself a failure.
func TestGateMissingBenchmark(t *testing.T) {
	base, err := readBaseline(filepath.Join("testdata", "baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	got := parseFixture(t, "ok.txt")
	delete(got, "BenchmarkAreaBound")
	fails := compare(io.Discard, base, got, 0.35, 0.10)
	if len(fails) != 1 || !strings.Contains(fails[0], "missing from the run") {
		t.Errorf("missing benchmark not flagged: %v", fails)
	}
}

// TestBaselineRoundTrip: -update output reads back identically.
func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	want := Baseline{Note: "n", Benchmarks: map[string]Result{
		"BenchmarkX": {NsPerOp: 12.5, AllocsPerOp: 3},
	}}
	if err := writeBaseline(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := readBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != want.Note || got.Benchmarks["BenchmarkX"] != want.Benchmarks["BenchmarkX"] {
		t.Errorf("round trip mismatch: %+v vs %+v", got, want)
	}
}

func TestReadBaselineErrors(t *testing.T) {
	if _, err := readBaseline(filepath.Join("testdata", "nope.json")); err == nil {
		t.Error("missing baseline accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readBaseline(empty); err == nil {
		t.Error("baseline without benchmarks accepted")
	}
}

// Command benchgate is the CI benchmark-regression gate. It runs the key
// scheduler benchmarks (or parses a pre-recorded run with -input),
// normalizes the results, and compares them against the checked-in
// baseline BENCH_baseline.json.
//
// Allocations per op are compared with a tight band — they are
// machine-independent, so any growth is a real regression. Nanoseconds
// per op get a wide band (default 35%) that absorbs runner noise while
// still catching algorithmic slowdowns.
//
// Usage:
//
//	benchgate                 # run the gated benchmarks, compare, exit 1 on regression
//	benchgate -update         # re-run and rewrite the baseline
//	benchgate -input out.txt  # gate a pre-recorded `go test -bench -benchmem` output
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// gatedBenchmarks is the -bench regexp for the gate: the scheduler fast
// paths, the area bound, the DAG path, the pool scaling bench, and the
// shard-routing hot paths (ring lookup and candidate ordering).
const gatedBenchmarks = "^(BenchmarkScheduleIndependent|BenchmarkScheduleIndependentZoo|BenchmarkScheduleIndependentScaling|BenchmarkAreaBound|BenchmarkScheduleDAGCholesky|BenchmarkHDRRecord|BenchmarkSpanStartEnd|BenchmarkRingLookup|BenchmarkRouterCandidates)$"

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
		input        = flag.String("input", "", "gate this `go test -bench -benchmem` output instead of running the benchmarks")
		benchRe      = flag.String("bench", gatedBenchmarks, "benchmark selection regexp passed to go test")
		count        = flag.Int("count", 3, "benchmark repetitions; the minimum per benchmark is gated")
		benchtime    = flag.String("benchtime", "300ms", "per-benchmark time passed to go test")
		nsTol        = flag.Float64("tolerance", 0.35, "allowed ns/op regression, as a fraction of the baseline")
		allocTol     = flag.Float64("alloc-tolerance", 0.10, "allowed allocs/op regression, as a fraction of the baseline")
		update       = flag.Bool("update", false, "rewrite the baseline from this run instead of gating")
	)
	flag.Parse()

	got, err := collect(*input, *benchRe, *count, *benchtime)
	if err != nil {
		fatal(err)
	}

	if *update {
		b := Baseline{
			Note: "regenerate with: go run ./cmd/benchgate -update " +
				"(run on the CI runner class the gate executes on)",
			Benchmarks: got,
		}
		if err := writeBaseline(*baselinePath, b); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: baseline %s updated with %d benchmarks\n", *baselinePath, len(got))
		return
	}

	base, err := readBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	summarize(os.Stdout, base, got)
	fails := compare(os.Stdout, base, got, *nsTol, *allocTol)
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "benchgate: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok — %d benchmarks within tolerance (ns/op %.0f%%, allocs/op %.0f%%)\n",
		len(base.Benchmarks), 100**nsTol, 100**allocTol)
}

// collect produces the run results: parsed from input when given,
// otherwise by running the benchmarks in the current module.
func collect(input, benchRe string, count int, benchtime string) (map[string]Result, error) {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return nil, err
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchgate: close:", err)
			}
		}()
		return parseBench(f)
	}
	args := []string{"test", "-run", "^$", "-bench", benchRe, "-benchmem",
		"-count", strconv.Itoa(count), "-benchtime", benchtime, "."}
	fmt.Println("benchgate: go", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench failed: %w", err)
	}
	os.Stdout.Write(out) //hplint:allow errflow best-effort echo of the bench log, gating uses the parsed copy
	return parseBench(strings.NewReader(string(out)))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

// Command experiments regenerates every table and figure of the paper's
// evaluation section, printing Markdown tables to stdout and writing CSV
// files to -out (default results/).
//
// Usage:
//
//	experiments                 # everything, paper-sized sweep (minutes)
//	experiments -exp fig6       # one experiment
//	experiments -quick          # reduced sweep (seconds)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// logger is the structured run log; main swaps in a live one so run()
// keeps its plain signature for the tests.
var logger = obs.NewLogger(nil, false)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: all, table1, table2, fig6, fig7, fig8, fig9, ablation, shape, bounds, kernelmix, distribution, adversary, transfer, robustness, tournament")
		out     = flag.String("out", "results", "output directory for CSV files")
		quick   = flag.Bool("quick", false, "reduced N sweep (fast)")
		workers = flag.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS); results are identical for any value")
		verbose = flag.Bool("v", false, "structured debug logging to stderr; HP_LOG overrides")
	)
	flag.Parse()
	// Logs stay behind -v / HP_LOG: the default CLI output is stdout only.
	if *verbose || os.Getenv(obs.LogEnv) != "" {
		logger = obs.NewLogger(os.Stderr, *verbose)
	}
	if err := run(*exp, *out, *quick, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp, out string, quick bool, workers int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	ctx := context.Background()
	pool := engine.NewPool(workers, nil)
	pl := expr.PaperPlatform()
	ns := expr.PaperNs()
	if quick {
		ns = expr.SmallNs()
	}
	logger.Info("experiments starting", "exp", exp, "out", out, "quick", quick,
		"workers", pool.Width(), "platform", pl.String())

	emit := func(name string, t *stats.Table) error {
		fmt.Println(t.Markdown())
		path := filepath.Join(out, name+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("(written to %s)\n\n", path)
		logger.Info("experiment written", "experiment", name, "path", path)
		return nil
	}
	emitCharts := func(charts map[string]*plot.Chart) error {
		for name, c := range charts {
			path := filepath.Join(out, name+".svg")
			if err := os.WriteFile(path, []byte(c.SVG(760, 420)), 0o644); err != nil {
				return err
			}
			fmt.Printf("(chart written to %s)\n", path)
			logger.Debug("chart written", "chart", name, "path", path)
		}
		return nil
	}

	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("table1") {
		ran = true
		if err := emit("table1", expr.Table1Table()); err != nil {
			return err
		}
	}
	if want("table2") {
		ran = true
		start := time.Now()
		rows, err := expr.Table2()
		if err != nil {
			return err
		}
		fmt.Printf("table2 computed in %v\n", time.Since(start).Round(time.Millisecond))
		if err := emit("table2", expr.Table2Table(rows)); err != nil {
			return err
		}
	}
	if want("fig6") {
		ran = true
		start := time.Now()
		rows, err := expr.Fig6Pool(ctx, pool, ns, pl)
		if err != nil {
			return err
		}
		fmt.Printf("fig6 computed in %v\n", time.Since(start).Round(time.Millisecond))
		if err := emit("fig6", expr.Fig6Table(rows)); err != nil {
			return err
		}
		if err := emitCharts(expr.Fig6Charts(rows)); err != nil {
			return err
		}
	}
	if want("fig7") || want("fig8") || want("fig9") {
		ran = true
		start := time.Now()
		rows, err := expr.Fig7Pool(ctx, pool, ns, pl)
		if err != nil {
			return err
		}
		fmt.Printf("fig7/8/9 computed in %v\n", time.Since(start).Round(time.Millisecond))
		if exp == "all" || exp == "fig7" {
			if err := emit("fig7", expr.Fig7Table(rows)); err != nil {
				return err
			}
		}
		if exp == "all" || exp == "fig8" {
			if err := emit("fig8", expr.Fig8Table(rows)); err != nil {
				return err
			}
		}
		if exp == "all" || exp == "fig9" {
			if err := emit("fig9", expr.Fig9Table(rows)); err != nil {
				return err
			}
		}
		charts := map[string]*plot.Chart{}
		if exp == "all" || exp == "fig7" {
			for k, v := range expr.Fig7Charts(rows) {
				charts[k] = v
			}
		}
		if exp == "all" || exp == "fig8" {
			for k, v := range expr.Fig8Charts(rows) {
				charts[k] = v
			}
		}
		if exp == "all" || exp == "fig9" {
			for k, v := range expr.Fig9Charts(rows) {
				charts[k] = v
			}
		}
		if err := emitCharts(charts); err != nil {
			return err
		}
	}
	if want("ablation") {
		ran = true
		start := time.Now()
		rows, err := expr.AblationPool(ctx, pool, ns, pl)
		if err != nil {
			return err
		}
		fmt.Printf("ablation computed in %v\n", time.Since(start).Round(time.Millisecond))
		if err := emit("ablation", expr.AblationTable(rows)); err != nil {
			return err
		}
	}
	if want("shape") {
		ran = true
		n := 16
		if quick {
			n = 8
		}
		rows, err := expr.Shape(n, expr.DefaultShapes())
		if err != nil {
			return err
		}
		if err := emit("shape", expr.ShapeTable(rows)); err != nil {
			return err
		}
	}
	if want("bounds") {
		ran = true
		bns := []int{4, 8, 12, 16, 24}
		if quick {
			bns = []int{4, 8}
		}
		rows, err := expr.BoundsCmpPool(ctx, pool, bns, pl)
		if err != nil {
			return err
		}
		if err := emit("bounds", expr.BoundsCmpTable(rows)); err != nil {
			return err
		}
	}
	if want("kernelmix") {
		ran = true
		n := 16
		if quick {
			n = 8
		}
		var all []expr.KernelMixRow
		for _, fact := range workloads.Factorizations() {
			rows, err := expr.KernelMixPool(ctx, pool, fact, n, pl)
			if err != nil {
				return err
			}
			all = append(all, rows...)
		}
		if err := emit("kernelmix", expr.KernelMixTable(all)); err != nil {
			return err
		}
	}
	if want("distribution") {
		ran = true
		samples := 300
		if quick {
			samples = 50
		}
		rows, err := expr.DistributionPool(ctx, pool, samples, 120, pl, 2017)
		if err != nil {
			return err
		}
		if err := emit("distribution", expr.DistributionTable(rows)); err != nil {
			return err
		}
	}
	if want("adversary") {
		ran = true
		iters := 4000
		if quick {
			iters = 800
		}
		start := time.Now()
		rows, err := expr.AdversaryPool(ctx, pool, iters, 2017)
		if err != nil {
			return err
		}
		fmt.Printf("adversary computed in %v\n", time.Since(start).Round(time.Millisecond))
		if err := emit("adversary", expr.AdversaryTable(rows)); err != nil {
			return err
		}
	}
	if want("transfer") {
		ran = true
		n := 16
		if quick {
			n = 8
		}
		rows, err := expr.Transfer(n, []float64{0, 0.5, 1, 2, 4, 8}, pl)
		if err != nil {
			return err
		}
		if err := emit("transfer", expr.TransferTable(rows)); err != nil {
			return err
		}
	}
	if want("robustness") {
		ran = true
		start := time.Now()
		n, seeds := 16, 5
		if quick {
			n, seeds = 8, 2
		}
		var all []expr.RobustnessRow
		for _, fact := range workloads.Factorizations() {
			rows, err := expr.RobustnessPool(ctx, pool, fact, n, []float64{0, 0.1, 0.2, 0.4}, seeds, pl)
			if err != nil {
				return err
			}
			all = append(all, rows...)
		}
		fmt.Printf("robustness computed in %v\n", time.Since(start).Round(time.Millisecond))
		if err := emit("robustness", expr.RobustnessTable(all)); err != nil {
			return err
		}
	}
	if want("tournament") {
		ran = true
		cfg := expr.DefaultTournament()
		if quick {
			cfg = expr.QuickTournament()
		}
		start := time.Now()
		rows, err := expr.TournamentPool(ctx, pool, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("tournament computed in %v\n", time.Since(start).Round(time.Millisecond))
		if err := emit("tournament", expr.TournamentTable(rows)); err != nil {
			return err
		}
		if err := emit("tournament_wins", expr.TournamentWinsTable(rows)); err != nil {
			return err
		}
		if err := emitCharts(expr.TournamentCharts(rows)); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	st := pool.Stats()
	logger.Info("experiments done", "workers", st.Width, "cells", st.Cells,
		"cellBusySeconds", st.BusySeconds)
	return nil
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	dir := t.TempDir()
	for _, exp := range []string{"table1", "table2", "shape"} {
		if err := run(exp, dir, true, 1); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
		if _, err := os.Stat(filepath.Join(dir, exp+".csv")); err != nil {
			t.Errorf("%s: csv not written: %v", exp, err)
		}
	}
}

func TestRunQuickFigures(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig6", dir, true, 4); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "fig6.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "HeteroPrio") {
		t.Error("fig6 csv content wrong")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", t.TempDir(), true, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	dir := t.TempDir()
	for _, exp := range []string{"table1", "table2", "shape"} {
		if err := run(exp, dir, true, 1); err != nil {
			t.Errorf("%s: %v", exp, err)
		}
		if _, err := os.Stat(filepath.Join(dir, exp+".csv")); err != nil {
			t.Errorf("%s: csv not written: %v", exp, err)
		}
	}
}

func TestRunQuickFigures(t *testing.T) {
	dir := t.TempDir()
	if err := run("fig6", dir, true, 4); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "fig6.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "HeteroPrio") {
		t.Error("fig6 csv content wrong")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", t.TempDir(), true, 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunTournament(t *testing.T) {
	dir := t.TempDir()
	if err := run("tournament", dir, true, 2); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tournament.csv", "tournament_wins.csv"} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, alg := range []string{"HeteroPrio", "ERLS", "HLP", "CLB2C", "PriorityAware", "Affinity"} {
			if !strings.Contains(string(raw), alg) {
				t.Errorf("%s: missing column for %s", name, alg)
			}
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "tournament_8c2g.svg")); err != nil {
		t.Errorf("tournament chart not written: %v", err)
	}
}

// Command hpload drives an hpserve instance with a deterministic,
// seeded open-loop workload and prints an SLO report: latency quantiles
// from an HDR histogram, hit/shed rates, and a per-phase breakdown
// resolved from sampled request traces.
//
// The request plan (arrival times, endpoints, parameters) is a pure
// function of -seed/-n/-rate/-mix; the -concurrency cap only gates
// dispatch, so the plan section of the report is reproducible across
// machines and concurrency levels while the latency section reflects
// the target's actual behaviour.
//
// Against a replica router, -replicas auto discovers the replica set
// from the router's /replicas endpoint and the report adds a cache-tier
// breakdown (L1/L2/computed off the merged /metrics) plus per-replica
// request counts and server-side latency quantiles.
//
//	hpload -url http://127.0.0.1:8080 -n 200 -rate 50 -seed 42 -json report.json
//	hpload -url http://127.0.0.1:8080 -replicas auto -n 1000 -rate 200
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/load"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hpload:", err)
		os.Exit(1)
	}
}

func run() error {
	url := flag.String("url", "http://127.0.0.1:8080", "base URL of the hpserve instance")
	n := flag.Int("n", 200, "number of requests in the plan")
	rate := flag.Float64("rate", 50, "mean arrival rate in requests per second (Poisson)")
	concurrency := flag.Int("concurrency", 8, "max in-flight requests (gates dispatch only)")
	seed := flag.Int64("seed", 1, "plan seed; same seed, same plan at any concurrency")
	mixFlag := flag.String("mix", "", "request mix as kind=weight[,kind=weight] (default schedule=9,compare=1)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	traceSample := flag.Int("trace-sample", 8, "resolve every Nth OK request's trace for the phase breakdown; 0 disables")
	replicas := flag.String("replicas", "",
		"replica URLs to scrape individually: auto (discover via the router's /replicas) or a comma-separated list")
	jsonPath := flag.String("json", "", "also write the report as JSON to this file")
	flag.Parse()

	mix, err := load.ParseMix(*mixFlag)
	if err != nil {
		return err
	}
	cfg := load.Config{
		BaseURL:     *url,
		Plan:        load.PlanConfig{Requests: *n, Rate: *rate, Seed: *seed, Mix: mix},
		Concurrency: *concurrency,
		Timeout:     *timeout,
		TraceSample: *traceSample,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *replicas {
	case "":
	case "auto":
		urls, err := load.DiscoverReplicas(ctx, nil, *url)
		if err != nil {
			return fmt.Errorf("discover replicas: %w", err)
		}
		cfg.Replicas = urls
	default:
		for _, u := range strings.Split(*replicas, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cfg.Replicas = append(cfg.Replicas, u)
			}
		}
	}

	rep, err := load.Run(ctx, cfg)
	if err != nil {
		return err
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		return err
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
	}
	return nil
}

// Command hplint runs the repository's static-analysis suite
// (internal/analysis) over every package in the module and exits non-zero
// on any diagnostic. It is the machine check behind the invariants the
// paper's guarantees rest on: deterministic scheduling code, float
// comparison hygiene, the zero-alloc observer and span guard contract,
// ordered map iteration, sleep-free tests, and — flow-sensitively —
// unit-consistent arithmetic, mutex discipline, scheduler input purity,
// error handling along every path, and span End() coverage on every
// path.
//
// Usage:
//
//	go run ./cmd/hplint ./...
//
// Package patterns are accepted for familiarity but the whole module is
// always loaded — the analyzers are repo-wide invariants, not per-package
// opt-ins. With -catalog the tool lists the analyzers and exits.
//
// Flags:
//
//	-catalog          list the analyzers and exit
//	-enable a,b,...   run only the named analyzers (default: all eleven)
//	-json             emit one JSON object per finding, one per line
//	-dir path -rel p  lint a single directory as module-relative path p
//	                  (used by CI to assert the golden flag fixtures fail)
//
// A finding can be suppressed at the offending line (or the line above)
// with a justified escape comment:
//
//	//hplint:allow <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

// finding is the JSON shape of one diagnostic: stable field names so CI
// can convert findings to GitHub annotations without parsing text.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	catalog := flag.Bool("catalog", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as one JSON object per line")
	enable := flag.String("enable", "", "comma-separated analyzer names to run (default: all)")
	dir := flag.String("dir", "", "lint a single directory instead of the module")
	rel := flag.String("rel", "", "module-relative path the -dir package is loaded under")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hplint [-catalog] [-json] [-enable a,b] [-dir path -rel relpath] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.All()
	if *catalog {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *enable != "" {
		known := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			known[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*enable, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := known[name]
			if !ok {
				fatal(fmt.Errorf("-enable names unknown analyzer %q (see -catalog)", name))
			}
			picked = append(picked, a)
		}
		if len(picked) == 0 {
			fatal(fmt.Errorf("-enable selected no analyzers"))
		}
		suite = picked
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	var pkgs []*analysis.Package
	if *dir != "" {
		if *rel == "" {
			fatal(fmt.Errorf("-dir requires -rel (the module-relative path to lint the directory as)"))
		}
		pkgs, err = loader.LoadDir(*dir, *rel)
	} else {
		pkgs, err = loader.LoadModule()
	}
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(os.Stdout)
	count := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.RunAnalyzers(suite, pkg) {
			if *jsonOut {
				f := finding{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Analyzer: d.Analyzer, Message: d.Message}
				if err := enc.Encode(f); err != nil {
					fatal(err)
				}
			} else {
				fmt.Println(d)
			}
			count++
		}
	}
	if count > 0 {
		fmt.Fprintf(os.Stderr, "hplint: %d diagnostic(s)\n", count)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hplint:", err)
	os.Exit(2)
}

// Command hplint runs the repository's static-analysis suite
// (internal/analysis) over every package in the module and exits non-zero
// on any diagnostic. It is the machine check behind the invariants the
// paper's guarantees rest on: deterministic scheduling code, float
// comparison hygiene, the zero-alloc observer contract, ordered map
// iteration, and sleep-free tests.
//
// Usage:
//
//	go run ./cmd/hplint ./...
//
// Package patterns are accepted for familiarity but the whole module is
// always loaded — the analyzers are repo-wide invariants, not per-package
// opts-ins. With -catalog the tool lists the analyzers and exits.
//
// A finding can be suppressed at the offending line (or the line above)
// with a justified escape comment:
//
//	//hplint:allow <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	catalog := flag.Bool("catalog", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hplint [-catalog] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.All()
	if *catalog {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fatal(err)
	}
	count := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.RunAnalyzers(suite, pkg) {
			fmt.Println(d)
			count++
		}
	}
	if count > 0 {
		fmt.Fprintf(os.Stderr, "hplint: %d diagnostic(s)\n", count)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hplint:", err)
	os.Exit(2)
}

// Command hplint runs the repository's static-analysis suite
// (internal/analysis) over every package in the module and exits non-zero
// on any diagnostic. It is the machine check behind the invariants the
// paper's guarantees rest on: deterministic scheduling code, float
// comparison hygiene, the zero-alloc observer and span guard contract,
// ordered map iteration, sleep-free tests, and — flow-sensitively —
// unit-consistent arithmetic, mutex discipline, scheduler input purity,
// error handling along every path, span End() coverage on every path,
// and — module-wide over the call graph — allocation-free hot paths,
// an acyclic lock-order graph, blocking operations with reachable
// counterparts, and race-candidate-free goroutine captures.
//
// Usage:
//
//	go run ./cmd/hplint ./...
//
// Package patterns are accepted for familiarity but the whole module is
// always loaded — the analyzers are repo-wide invariants, not per-package
// opt-ins. With -catalog the tool lists the analyzers and exits.
//
// Flags:
//
//	-catalog          list the analyzers and exit
//	-enable a,b,...   run only the named analyzers (default: all fifteen)
//	-json             emit one JSON object per finding, one per line
//	                  (findings with a call/acquisition chain carry it in
//	                  the "chain" field)
//	-callgraph        dump the interprocedural call graph and exit
//	-lockgraph        dump the module-wide lock acquisition graph and exit
//	-calibrate dir    diff allocflow's escape verdicts against the
//	                  compiler's (go build -gcflags=-m) over the corpus in
//	                  dir; exit non-zero below 95% agreement
//	-racevalidate     replay the concurrent packages' test suites under
//	                  -race and assert every reported location is inside
//	                  capturecheck's candidate set (differential
//	                  validation); -racetimeout bounds each test binary
//	-dir path -rel p  lint a single directory as module-relative path p
//	                  (used by CI to assert the golden flag fixtures fail)
//
// A finding can be suppressed at the offending line (or the line above)
// with a justified escape comment:
//
//	//hplint:allow <analyzer> <reason>
//
// On full-module, full-suite runs hplint also reports stale allows —
// escape comments whose analyzer no longer fires at their site.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
)

// finding is the JSON shape of one diagnostic: stable field names so CI
// can convert findings to GitHub annotations without parsing text.
// Chain is present only for findings that carry a call/acquisition chain
// (allocflow hot-path chains, lockorder cycles).
type finding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

func main() {
	catalog := flag.Bool("catalog", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as one JSON object per line")
	enable := flag.String("enable", "", "comma-separated analyzer names to run (default: all)")
	dir := flag.String("dir", "", "lint a single directory instead of the module")
	rel := flag.String("rel", "", "module-relative path the -dir package is loaded under")
	callgraph := flag.Bool("callgraph", false, "dump the interprocedural call graph and exit")
	lockgraph := flag.Bool("lockgraph", false, "dump the module-wide lock acquisition graph and exit")
	calibrate := flag.String("calibrate", "", "calibrate allocflow against go build -gcflags=-m over the corpus `dir`")
	racevalidate := flag.Bool("racevalidate", false, "replay the concurrent packages' tests under -race and check reports against capturecheck's candidate set")
	racetimeout := flag.Duration("racetimeout", 4*time.Minute, "per-test-binary timeout for -racevalidate")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hplint [-catalog] [-callgraph] [-lockgraph] [-calibrate dir] [-racevalidate] [-json] [-enable a,b] [-dir path -rel relpath] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *calibrate != "" {
		rep, err := analysis.CalibrateDir(*calibrate)
		if err != nil {
			fatal(err)
		}
		rep.Format(os.Stdout)
		if rep.Agreement() < 0.95 {
			fmt.Fprintf(os.Stderr, "hplint: calibration agreement %.1f%% below the 95%% floor\n", 100*rep.Agreement())
			os.Exit(1)
		}
		return
	}
	if *racevalidate {
		wd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		rep, err := analysis.ValidateRace(wd, *racetimeout)
		if err != nil {
			fatal(err)
		}
		rep.Format(os.Stdout)
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}

	suite := analysis.All()
	if *catalog {
		for _, a := range suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *enable != "" {
		known := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			known[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*enable, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			a, ok := known[name]
			if !ok {
				fatal(fmt.Errorf("-enable names unknown analyzer %q (see -catalog)", name))
			}
			picked = append(picked, a)
		}
		if len(picked) == 0 {
			fatal(fmt.Errorf("-enable selected no analyzers"))
		}
		suite = picked
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fatal(err)
	}
	var pkgs []*analysis.Package
	if *dir != "" {
		if *rel == "" {
			fatal(fmt.Errorf("-dir requires -rel (the module-relative path to lint the directory as)"))
		}
		pkgs, err = loader.LoadDir(*dir, *rel)
	} else {
		pkgs, err = loader.LoadModule()
	}
	if err != nil {
		fatal(err)
	}
	prog := analysis.BuildProgram(pkgs)
	if *callgraph {
		fmt.Print(prog.DumpGraph())
		return
	}
	if *lockgraph {
		fmt.Print(prog.DumpLockGraph())
		return
	}
	// Collect everything before printing: findings are globally sorted by
	// (file, line, column, analyzer) so CI annotation diffs and golden
	// comparisons are stable across load order. Full-module, full-suite
	// runs also keep the raw (pre-suppression) stream to report stale
	// hplint:allow escapes; partial runs cannot tell stale from
	// not-exercised, so they skip the check.
	fullRun := *dir == "" && *enable == ""
	var diags, rawAll []analysis.Diagnostic
	for _, pkg := range pkgs {
		kept, raw := analysis.RunAnalyzersProgramRaw(suite, pkg, prog)
		diags = append(diags, kept...)
		if fullRun {
			rawAll = append(rawAll, raw...)
		}
	}
	if fullRun {
		diags = append(diags, analysis.StaleAllows(suite, pkgs, prog, rawAll)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		if *jsonOut {
			f := finding{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Analyzer: d.Analyzer, Message: d.Message, Chain: d.Chain}
			if err := enc.Encode(f); err != nil {
				fatal(err)
			}
		} else {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hplint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hplint:", err)
	os.Exit(2)
}

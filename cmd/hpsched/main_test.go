package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDAGMode(t *testing.T) {
	for _, alg := range []string{"HeteroPrio-min", "HEFT-avg", "DualHP-fifo"} {
		if err := run(alg, "cholesky", 4, 4, 2, false, true, false, "", "", 1); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

func TestRunIndependentMode(t *testing.T) {
	for _, alg := range []string{"HeteroPrio", "DualHP", "HEFT"} {
		if err := run(alg, "lu", 4, 4, 2, true, false, true, "", "", 1); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

func TestRunExtraWorkloads(t *testing.T) {
	for _, wl := range []string{"wavefront", "chains", "uniform"} {
		if err := run("HeteroPrio-min", wl, 5, 4, 2, false, false, false, "", "", 1); err != nil {
			t.Errorf("%s: %v", wl, err)
		}
	}
	if err := run("HeteroPrio", "uniform", 12, 4, 2, true, false, false, "", "", 1); err != nil {
		t.Errorf("independent uniform: %v", err)
	}
	for _, wl := range []string{"wavefront", "chains", "uniform"} {
		if err := run("HeteroPrio-min", wl, 0, 4, 2, false, false, false, "", "", 1); err == nil {
			t.Errorf("%s: size 0 accepted", wl)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", "cholesky", 4, 4, 2, false, false, false, "", "", 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run("HeteroPrio-min", "nope", 4, 4, 2, false, false, false, "", "", 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run("HeteroPrio-min", "cholesky", 4, -1, 0, false, false, false, "", "", 1); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestRunMultiAlg(t *testing.T) {
	if err := run("HeteroPrio-min,HEFT-avg", "cholesky", 4, 4, 2, false, false, false, "", "", 2); err != nil {
		t.Errorf("comma list: %v", err)
	}
	if err := run("all", "cholesky", 4, 4, 2, false, false, false, "", "", 4); err != nil {
		t.Errorf("all DAG algorithms: %v", err)
	}
	if err := run("all", "lu", 4, 4, 2, true, false, false, "", "", 4); err != nil {
		t.Errorf("all independent algorithms: %v", err)
	}
	if err := run("HeteroPrio-min,HEFT-avg", "cholesky", 4, 4, 2, false, true, false, "", "", 2); err == nil {
		t.Error("gantt accepted with multiple algorithms")
	}
	if err := run("HeteroPrio-min,nope", "cholesky", 4, 4, 2, false, false, false, "", "", 2); err == nil {
		t.Error("unknown algorithm accepted in list")
	}
	if err := run(" , ", "cholesky", 4, 4, 2, false, false, false, "", "", 1); err == nil {
		t.Error("empty algorithm list accepted")
	}
}

func TestParseAlgs(t *testing.T) {
	if got := parseAlgs("a, b,,c", false); len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("parseAlgs list = %v", got)
	}
	if got := parseAlgs("all", false); len(got) == 0 {
		t.Error("parseAlgs all (DAG) empty")
	}
	if got := parseAlgs("all", true); len(got) == 0 {
		t.Error("parseAlgs all (independent) empty")
	}
}

func TestRunTraceOutputs(t *testing.T) {
	dir := t.TempDir()
	chrome := filepath.Join(dir, "trace.json")
	svg := filepath.Join(dir, "gantt.svg")
	if err := run("HeteroPrio-min", "qr", 4, 4, 2, false, false, false, chrome, svg, 1); err != nil {
		t.Fatal(err)
	}
	cj, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(cj), "\"ph\"") {
		t.Error("chrome trace content wrong")
	}
	sv, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sv), "<svg") {
		t.Error("svg content wrong")
	}
}

// Command hpsched runs one or more schedulers on one workload and prints
// the schedule metrics (and optionally an ASCII Gantt chart).
//
// Usage examples:
//
//	hpsched -alg HeteroPrio-min -workload cholesky -n 8 -cpus 20 -gpus 4
//	hpsched -alg HEFT-avg -workload qr -n 12 -gantt
//	hpsched -alg HeteroPrio -independent -workload lu -n 8
//	hpsched -alg DualHP -independent -workload cholesky -n 8 -csv
//	hpsched -alg all -workload cholesky -n 8 -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// logger is the structured run log; main swaps in a live one so run()
// keeps its plain signature for the tests.
var logger = obs.NewLogger(nil, false)

func main() {
	var (
		alg         = flag.String("alg", "HeteroPrio-min", "algorithm, comma-separated list, or \"all\": DAG mode accepts "+fmt.Sprint(expr.AllDAGAlgorithms())+"; independent mode accepts "+fmt.Sprint(expr.AllIndepAlgorithms()))
		workload    = flag.String("workload", "cholesky", "workload: cholesky, qr, lu, wavefront, chains or uniform")
		n           = flag.Int("n", 8, "workload size parameter (tiles, grid side, chain count, task count)")
		cpus        = flag.Int("cpus", 20, "number of CPU workers")
		gpus        = flag.Int("gpus", 4, "number of GPU workers")
		independent = flag.Bool("independent", false, "drop dependencies and schedule the kernel instances as independent tasks")
		gantt       = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		csv         = flag.Bool("csv", false, "print the schedule as CSV")
		chromeOut   = flag.String("chrome", "", "write a Chrome trace-event JSON file (open in chrome://tracing or ui.perfetto.dev)")
		svgOut      = flag.String("svg", "", "write an SVG Gantt chart to this file")
		workers     = flag.Int("workers", 0, "parallel workers for multi-algorithm runs (0 = GOMAXPROCS)")
		verbose     = flag.Bool("v", false, "structured debug logging to stderr; HP_LOG overrides")
	)
	flag.Parse()
	// Logs stay behind -v / HP_LOG: the default CLI output is stdout only.
	if *verbose || os.Getenv(obs.LogEnv) != "" {
		logger = obs.NewLogger(os.Stderr, *verbose)
	}

	if err := run(*alg, *workload, *n, *cpus, *gpus, *independent, *gantt, *csv, *chromeOut, *svgOut, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "hpsched:", err)
		os.Exit(1)
	}
}

// parseAlgs expands the -alg flag: a single name, a comma-separated list,
// or "all" (every algorithm of the current mode).
func parseAlgs(spec string, independent bool) []string {
	if spec == "all" {
		if independent {
			return expr.AllIndepAlgorithms()
		}
		return expr.AllDAGAlgorithms()
	}
	var algs []string
	for _, a := range strings.Split(spec, ",") {
		if a = strings.TrimSpace(a); a != "" {
			algs = append(algs, a)
		}
	}
	return algs
}

func run(algSpec, workload string, n, cpus, gpus int, independent, gantt, csv bool, chromeOut, svgOut string, workers int) error {
	algs := parseAlgs(algSpec, independent)
	if len(algs) == 0 {
		return fmt.Errorf("no algorithm given")
	}
	if len(algs) == 1 {
		return runOne(algs[0], workload, n, cpus, gpus, independent, gantt, csv, chromeOut, svgOut)
	}
	if gantt || csv || chromeOut != "" || svgOut != "" {
		return fmt.Errorf("-gantt/-csv/-chrome/-svg need a single -alg, got %d algorithms", len(algs))
	}
	// Fan the algorithms out on a pool; Map returns the reports in flag
	// order, so the output is identical for any -workers value.
	pool := engine.NewPool(workers, nil)
	reports, err := engine.Map(context.Background(), pool, engine.Job{Cells: len(algs)},
		func(_ context.Context, c engine.Cell) (string, error) {
			return report(algs[c.Index], workload, n, cpus, gpus, independent)
		})
	if err != nil {
		return err
	}
	for i, r := range reports {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(r)
	}
	return nil
}

func runOne(alg, workload string, n, cpus, gpus int, independent, gantt, csv bool, chromeOut, svgOut string) error {
	pl := platform.Platform{CPUs: cpus, GPUs: gpus}
	if err := pl.Validate(); err != nil {
		return err
	}

	s, in, lower, err := compute(alg, workload, n, pl, independent)
	if err != nil {
		return err
	}
	fmt.Print(summaryText(alg, workload, n, pl, independent, s, in, lower))
	if gantt {
		fmt.Println()
		fmt.Print(s.Gantt(100))
	}
	if csv {
		fmt.Println()
		fmt.Print(s.CSV())
	}
	if chromeOut != "" {
		names := make(map[int]string, len(in))
		for _, t := range in {
			names[t.ID] = t.Name
		}
		raw, err := trace.Chrome(s, names)
		if err != nil {
			return err
		}
		if err := os.WriteFile(chromeOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("chrome trace written to %s\n", chromeOut)
	}
	if svgOut != "" {
		if err := os.WriteFile(svgOut, []byte(trace.SVG(s, 1200)), 0o644); err != nil {
			return err
		}
		fmt.Printf("svg gantt written to %s\n", svgOut)
	}
	return nil
}

// compute builds the workload, schedules it with alg, validates the
// result, and derives the lower bound.
func compute(alg, workload string, n int, pl platform.Platform, independent bool) (*sim.Schedule, platform.Instance, float64, error) {
	logger.Debug("building workload", "workload", workload, "n", n, "independent", independent)
	start := time.Now()
	var (
		s     *sim.Schedule
		in    platform.Instance
		lower float64
	)
	if independent {
		g, err := buildWorkload(workload, n)
		if err != nil {
			return nil, nil, 0, err
		}
		in = g.Tasks().Clone()
		s, err = expr.RunIndependent(alg, in, pl)
		if err != nil {
			return nil, nil, 0, err
		}
		if err := s.Validate(in, nil); err != nil {
			return nil, nil, 0, fmt.Errorf("schedule validation failed: %w", err)
		}
		lower, err = bounds.Lower(in, pl)
		if err != nil {
			return nil, nil, 0, err
		}
	} else {
		g, err := buildWorkload(workload, n)
		if err != nil {
			return nil, nil, 0, err
		}
		in = g.Tasks()
		s, err = expr.RunDAG(alg, g, pl)
		if err != nil {
			return nil, nil, 0, err
		}
		if err := s.Validate(in, g); err != nil {
			return nil, nil, 0, fmt.Errorf("schedule validation failed: %w", err)
		}
		lower, err = bounds.DAGLowerRefined(g, pl)
		if err != nil {
			return nil, nil, 0, err
		}
	}

	sum := obs.Summarize(s, in, lower)
	logger.Info("run complete",
		"workload", workload, "alg", alg, "n", n, "independent", independent,
		"tasks", sum.Tasks, "makespan_ms", sum.Makespan, "ratio", sum.Ratio,
		"spoliations", sum.Spoliations, "wasted_ms", sum.WastedWork,
		"elapsed_ms", float64(time.Since(start).Microseconds())/1000)
	return s, in, lower, nil
}

// summaryText renders the metric block printed for every run.
func summaryText(alg, workload string, n int, pl platform.Platform, independent bool, s *sim.Schedule, in platform.Instance, lower float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload:   %s N=%d (%d tasks), %s\n", workload, n, len(in), pl)
	fmt.Fprintf(&b, "algorithm:  %s (independent=%v)\n", alg, independent)
	fmt.Fprintf(&b, "makespan:   %.4g ms\n", s.Makespan())
	fmt.Fprintf(&b, "lowerbound: %.4g ms (ratio %.4f)\n", lower, s.Makespan()/lower)
	fmt.Fprintf(&b, "spoliated:  %d runs\n", s.SpoliationCount())
	for _, k := range []platform.Kind{platform.CPU, platform.GPU} {
		fmt.Fprintf(&b, "%s: busy %.4g ms, idle %.4g ms, equivalent accel %.4g\n",
			k, s.BusyTime(k), s.IdleTime(k), s.EquivalentAccel(in, k))
	}
	return b.String()
}

// report is the multi-algorithm cell body: one full compute plus the
// rendered summary, returned as a string so the reduction stays ordered.
func report(alg, workload string, n, cpus, gpus int, independent bool) (string, error) {
	pl := platform.Platform{CPUs: cpus, GPUs: gpus}
	if err := pl.Validate(); err != nil {
		return "", err
	}
	s, in, lower, err := compute(alg, workload, n, pl, independent)
	if err != nil {
		return "", err
	}
	return summaryText(alg, workload, n, pl, independent, s, in, lower), nil
}

// buildWorkload constructs the requested task graph. Independent mode
// drops the dependencies afterwards.
func buildWorkload(name string, n int) (*dag.Graph, error) {
	switch name {
	case "cholesky", "qr", "lu":
		return workloads.Build(workloads.Factorization(name), n)
	case "wavefront":
		if n < 1 {
			return nil, fmt.Errorf("wavefront needs n >= 1")
		}
		return workloads.DefaultWavefront(n), nil
	case "chains":
		if n < 1 {
			return nil, fmt.Errorf("chains needs n >= 1")
		}
		even := platform.Task{CPUTime: 10, GPUTime: 1}
		odd := platform.Task{CPUTime: 2, GPUTime: 3}
		return workloads.BagOfChains(n, 10, even, odd), nil
	case "uniform":
		if n < 1 {
			return nil, fmt.Errorf("uniform needs n >= 1")
		}
		rng := rand.New(rand.NewSource(1))
		in := workloads.UniformInstance(n, 1, 100, 0.2, 40, rng)
		return dag.FromInstance(in), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

// Command hpsched runs one scheduler on one workload and prints the
// schedule metrics (and optionally an ASCII Gantt chart).
//
// Usage examples:
//
//	hpsched -alg HeteroPrio-min -workload cholesky -n 8 -cpus 20 -gpus 4
//	hpsched -alg HEFT-avg -workload qr -n 12 -gantt
//	hpsched -alg HeteroPrio -independent -workload lu -n 8
//	hpsched -alg DualHP -independent -workload cholesky -n 8 -csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// logger is the structured run log; main swaps in a live one so run()
// keeps its plain signature for the tests.
var logger = obs.NewLogger(nil, false)

func main() {
	var (
		alg         = flag.String("alg", "HeteroPrio-min", "algorithm: DAG mode accepts "+fmt.Sprint(expr.DAGAlgorithms())+"; independent mode accepts "+fmt.Sprint(expr.IndepAlgorithms()))
		workload    = flag.String("workload", "cholesky", "workload: cholesky, qr, lu, wavefront, chains or uniform")
		n           = flag.Int("n", 8, "workload size parameter (tiles, grid side, chain count, task count)")
		cpus        = flag.Int("cpus", 20, "number of CPU workers")
		gpus        = flag.Int("gpus", 4, "number of GPU workers")
		independent = flag.Bool("independent", false, "drop dependencies and schedule the kernel instances as independent tasks")
		gantt       = flag.Bool("gantt", false, "print an ASCII Gantt chart")
		csv         = flag.Bool("csv", false, "print the schedule as CSV")
		chromeOut   = flag.String("chrome", "", "write a Chrome trace-event JSON file (open in chrome://tracing or ui.perfetto.dev)")
		svgOut      = flag.String("svg", "", "write an SVG Gantt chart to this file")
		verbose     = flag.Bool("v", false, "structured debug logging to stderr; HP_LOG overrides")
	)
	flag.Parse()
	// Logs stay behind -v / HP_LOG: the default CLI output is stdout only.
	if *verbose || os.Getenv(obs.LogEnv) != "" {
		logger = obs.NewLogger(os.Stderr, *verbose)
	}

	if err := run(*alg, *workload, *n, *cpus, *gpus, *independent, *gantt, *csv, *chromeOut, *svgOut); err != nil {
		fmt.Fprintln(os.Stderr, "hpsched:", err)
		os.Exit(1)
	}
}

func run(alg, workload string, n, cpus, gpus int, independent, gantt, csv bool, chromeOut, svgOut string) error {
	pl := platform.Platform{CPUs: cpus, GPUs: gpus}
	if err := pl.Validate(); err != nil {
		return err
	}

	logger.Debug("building workload", "workload", workload, "n", n, "independent", independent)
	start := time.Now()
	var (
		s     *sim.Schedule
		in    platform.Instance
		lower float64
	)
	if independent {
		g, err := buildWorkload(workload, n)
		if err != nil {
			return err
		}
		in = g.Tasks().Clone()
		s, err = expr.RunIndependent(alg, in, pl)
		if err != nil {
			return err
		}
		if err := s.Validate(in, nil); err != nil {
			return fmt.Errorf("schedule validation failed: %w", err)
		}
		lower, err = bounds.Lower(in, pl)
		if err != nil {
			return err
		}
	} else {
		g, err := buildWorkload(workload, n)
		if err != nil {
			return err
		}
		in = g.Tasks()
		s, err = expr.RunDAG(alg, g, pl)
		if err != nil {
			return err
		}
		if err := s.Validate(in, g); err != nil {
			return fmt.Errorf("schedule validation failed: %w", err)
		}
		lower, err = bounds.DAGLowerRefined(g, pl)
		if err != nil {
			return err
		}
	}

	sum := obs.Summarize(s, in, lower)
	logger.Info("run complete",
		"workload", workload, "alg", alg, "n", n, "independent", independent,
		"tasks", sum.Tasks, "makespan_ms", sum.Makespan, "ratio", sum.Ratio,
		"spoliations", sum.Spoliations, "wasted_ms", sum.WastedWork,
		"elapsed_ms", float64(time.Since(start).Microseconds())/1000)

	fmt.Printf("workload:   %s N=%d (%d tasks), %s\n", workload, n, len(in), pl)
	fmt.Printf("algorithm:  %s (independent=%v)\n", alg, independent)
	fmt.Printf("makespan:   %.4g ms\n", s.Makespan())
	fmt.Printf("lowerbound: %.4g ms (ratio %.4f)\n", lower, s.Makespan()/lower)
	fmt.Printf("spoliated:  %d runs\n", s.SpoliationCount())
	for _, k := range []platform.Kind{platform.CPU, platform.GPU} {
		fmt.Printf("%s: busy %.4g ms, idle %.4g ms, equivalent accel %.4g\n",
			k, s.BusyTime(k), s.IdleTime(k), s.EquivalentAccel(in, k))
	}
	if gantt {
		fmt.Println()
		fmt.Print(s.Gantt(100))
	}
	if csv {
		fmt.Println()
		fmt.Print(s.CSV())
	}
	if chromeOut != "" {
		names := make(map[int]string, len(in))
		for _, t := range in {
			names[t.ID] = t.Name
		}
		raw, err := trace.Chrome(s, names)
		if err != nil {
			return err
		}
		if err := os.WriteFile(chromeOut, raw, 0o644); err != nil {
			return err
		}
		fmt.Printf("chrome trace written to %s\n", chromeOut)
	}
	if svgOut != "" {
		if err := os.WriteFile(svgOut, []byte(trace.SVG(s, 1200)), 0o644); err != nil {
			return err
		}
		fmt.Printf("svg gantt written to %s\n", svgOut)
	}
	return nil
}

// buildWorkload constructs the requested task graph. Independent mode
// drops the dependencies afterwards.
func buildWorkload(name string, n int) (*dag.Graph, error) {
	switch name {
	case "cholesky", "qr", "lu":
		return workloads.Build(workloads.Factorization(name), n)
	case "wavefront":
		if n < 1 {
			return nil, fmt.Errorf("wavefront needs n >= 1")
		}
		return workloads.DefaultWavefront(n), nil
	case "chains":
		if n < 1 {
			return nil, fmt.Errorf("chains needs n >= 1")
		}
		even := platform.Task{CPUTime: 10, GPUTime: 1}
		odd := platform.Task{CPUTime: 2, GPUTime: 3}
		return workloads.BagOfChains(n, 10, even, odd), nil
	case "uniform":
		if n < 1 {
			return nil, fmt.Errorf("uniform needs n >= 1")
		}
		rng := rand.New(rand.NewSource(1))
		in := workloads.UniformInstance(n, 1, 100, 0.2, 40, rng)
		return dag.FromInstance(in), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

func canonicalConfig() serveConfig {
	cfg := defaultServeConfig()
	cfg.canonical = true
	return cfg
}

func newTestCluster(t *testing.T, replicas int) *cluster {
	t.Helper()
	c, err := newCluster(obs.NewLogger(io.Discard, false), replicas, 1024,
		routerConfig{vnodes: 32, cooldown: time.Second, traceEntries: 64}, canonicalConfig())
	if err != nil {
		t.Fatalf("newCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func httpGet(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// startRouterListener serves the cluster's router on a loopback listener
// and returns its base URL (tests that need response headers go through
// a real connection).
func startRouterListener(t *testing.T, c *cluster) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := &http.Server{Handler: c.router, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return "http://" + ln.Addr().String()
}

// TestClusterShardedDeterminism is the in-process version of the CI
// sharded-determinism job: the same canonical request set answered by a
// 1-replica and a 3-replica cluster must produce byte-identical JSON
// bodies per key.
func TestClusterShardedDeterminism(t *testing.T) {
	one := newTestCluster(t, 1)
	three := newTestCluster(t, 3)
	paths := []string{
		"/schedule?workload=cholesky&n=4&cpus=4&gpus=1&alg=HeteroPrio-min&format=json",
		"/schedule?workload=wavefront&n=6&cpus=2&gpus=2&alg=HEFT-min&format=json",
		"/schedule?workload=chains&n=5&cpus=3&gpus=1&alg=DualHP-min&format=json",
		"/compare?workload=qr&n=3&cpus=4&gpus=1&format=json",
	}
	for _, p := range paths {
		c1, b1 := get(t, one.router, p)
		c3, b3 := get(t, three.router, p)
		if c1 != http.StatusOK || c3 != http.StatusOK {
			t.Fatalf("%s: status %d vs %d (%s / %s)", p, c1, c3, b1, b3)
		}
		if b1 != b3 {
			t.Fatalf("%s: 1-replica and 3-replica bodies differ:\n--- k=1\n%s\n--- k=3\n%s", p, b1, b3)
		}
		if strings.Contains(b1, `"id"`) || strings.Contains(b1, `"elapsed_ms"`) {
			t.Fatalf("%s: canonical body still carries volatile fields: %s", p, b1)
		}
	}
}

// TestClusterL2CrossReplicaHit drives the same request into two replicas
// directly (bypassing the router's affinity): the first computes and
// fills the shared L2, the second must answer byte-identically from it
// without recomputing.
func TestClusterL2CrossReplicaHit(t *testing.T) {
	c := newTestCluster(t, 2)
	const p = "/schedule?workload=lu&n=4&cpus=4&gpus=1&alg=HeteroPrio-avg&format=json"

	code, body1, _ := httpGet(t, c.urls[0]+p)
	if code != http.StatusOK {
		t.Fatalf("replica 0: status %d: %s", code, body1)
	}
	code, body2, _ := httpGet(t, c.urls[1]+p)
	if code != http.StatusOK {
		t.Fatalf("replica 1: status %d: %s", code, body2)
	}
	if body1 != body2 {
		t.Fatalf("L2-served body differs from computed body:\n--- computed\n%s\n--- via L2\n%s", body1, body2)
	}
	// Replica 1 must report an L2 hit and no second compute: exactly one
	// run of this algorithm happened across the cluster.
	_, metrics1, _ := httpGet(t, c.urls[1]+"/metrics")
	exp, err := obs.ParseExposition(metrics1)
	if err != nil {
		t.Fatalf("parse replica metrics: %v", err)
	}
	if got := exp.Value(shard.MetricL2Hits); got != 1 {
		t.Fatalf("replica 1 %s = %v, want 1\n%s", shard.MetricL2Hits, got, metrics1)
	}
	runs := 0.0
	for _, u := range c.urls {
		_, m, _ := httpGet(t, u+"/metrics")
		e, err := obs.ParseExposition(m)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		runs += e.Value("hp_runs_total")
	}
	if runs != 1 {
		t.Fatalf("cluster ran the schedule %v times, want 1", runs)
	}
}

// TestClusterRouterAffinity checks that repeated identical requests stay
// on one replica (L1 territory) while distinct keys spread out.
func TestClusterRouterAffinity(t *testing.T) {
	c := newTestCluster(t, 3)
	base := startRouterListener(t, c)
	seen := map[string]bool{}
	for i := 0; i < 12; i++ {
		p := fmt.Sprintf("/schedule?workload=wavefront&n=%d&cpus=2&gpus=1&alg=HEFT-min&format=json", 3+i)
		resp, err := http.Get(base + p)
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		rep := resp.Header.Get("X-Shard-Replica")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if rep == "" {
			t.Fatalf("missing X-Shard-Replica")
		}
		seen[rep] = true
		// Same key re-requested: same replica.
		resp2, err := http.Get(base + p)
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		io.Copy(io.Discard, resp2.Body)
		resp2.Body.Close()
		if rep2 := resp2.Header.Get("X-Shard-Replica"); rep2 != rep {
			t.Fatalf("key moved replicas: %s then %s", rep, rep2)
		}
	}
	if len(seen) < 2 {
		t.Fatalf("12 distinct keys all routed to %d replica(s)", len(seen))
	}
}

// TestClusterMergedMetrics checks the router's /metrics aggregates every
// replica: per-replica request counters sum, and the shared L2 entry
// gauge appears exactly once.
func TestClusterMergedMetrics(t *testing.T) {
	c := newTestCluster(t, 3)
	for i := 0; i < 6; i++ {
		p := fmt.Sprintf("/schedule?workload=chains&n=%d&cpus=2&gpus=1&alg=DualHP-min&format=json", 2+i)
		if code, body := get(t, c.router, p); code != http.StatusOK {
			t.Fatalf("%s: %d %s", p, code, body)
		}
	}
	code, body := get(t, c.router, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("merged /metrics status %d", code)
	}
	exp, err := obs.ParseExposition(body)
	if err != nil {
		t.Fatalf("merged /metrics does not parse: %v", err)
	}
	if got := exp.Value("hp_http_requests_total"); got < 6 {
		t.Fatalf("merged hp_http_requests_total = %v, want >= 6", got)
	}
	if got := exp.Value(shard.MetricShardRequests); got != 6 {
		t.Fatalf("merged %s = %v, want 6", shard.MetricShardRequests, got)
	}
	if got := exp.Value(shard.MetricL2Entries); got != 6 {
		t.Fatalf("merged %s = %v, want 6 (one fill per distinct key, counted once)", shard.MetricL2Entries, got)
	}
	if got := exp.Value("hp_runs_total"); got != 6 {
		t.Fatalf("merged hp_runs_total = %v, want 6", got)
	}
}

// TestRouterKeyMatchesServer pins the router's placement key to the
// replica's cache key for the same request.
func TestRouterKeyMatchesServer(t *testing.T) {
	req, _ := http.NewRequest(http.MethodGet, "/schedule?workload=cholesky&n=4&cpus=4&gpus=1&alg=HEFT", nil)
	kr, err := routerKey(req)
	if err != nil {
		t.Fatalf("routerKey: %v", err)
	}
	form := parseForm(req)
	ks, err := requestKeyFor(form, "schedule:"+form.Alg)
	if err != nil {
		t.Fatalf("requestKeyFor: %v", err)
	}
	if kr != ks {
		t.Fatalf("router and server disagree on the request key")
	}
	if _, err := routerKey(mustRequest(t, "/runs")); err == nil {
		t.Fatalf("routerKey accepted an unkeyed path")
	}
	if _, err := routerKey(mustRequest(t, "/schedule?workload=nope&n=4&cpus=1&gpus=1")); err == nil {
		t.Fatalf("routerKey accepted an invalid workload")
	}
}

func mustRequest(t *testing.T, path string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

package main

import (
	"fmt"
	"html/template"
	"math/rand"
	"net/http"
	"strconv"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/expr"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// server carries the parsed templates; handlers are pure functions of the
// request, so it is safe for concurrent use.
type server struct {
	mux  *http.ServeMux
	page *template.Template
}

func newServer() *server {
	s := &server{mux: http.NewServeMux()}
	s.page = template.Must(template.New("page").Parse(pageHTML))
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/schedule", s.handleSchedule)
	s.mux.HandleFunc("/compare", s.handleCompare)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// viewModel feeds the page template.
type viewModel struct {
	Workloads  []string
	Algorithms []string
	Form       scheduleForm
	Result     *scheduleResult
	Compare    []compareRow
	Error      string
}

type scheduleForm struct {
	Workload string
	N        int
	CPUs     int
	GPUs     int
	Alg      string
}

type scheduleResult struct {
	Tasks       int
	Makespan    float64
	Lower       float64
	Ratio       float64
	Spoliations int
	CPUAccel    float64
	GPUAccel    float64
	SVG         template.HTML
}

// compareRow is one algorithm's line in the comparison view.
type compareRow struct {
	Algorithm   string
	Makespan    float64
	Ratio       float64
	Spoliations int
	CPUAccel    float64
	GPUAccel    float64
}

func defaultForm() scheduleForm {
	return scheduleForm{Workload: "cholesky", N: 8, CPUs: 8, GPUs: 2, Alg: "HeteroPrio-min"}
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.render(w, viewModel{
		Workloads:  []string{"cholesky", "qr", "lu", "wavefront", "chains", "uniform"},
		Algorithms: expr.DAGAlgorithms(),
		Form:       defaultForm(),
	})
}

func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	form := defaultForm()
	form.Workload = r.FormValue("workload")
	form.Alg = r.FormValue("alg")
	form.N = atoiDefault(r.FormValue("n"), 8)
	form.CPUs = atoiDefault(r.FormValue("cpus"), 8)
	form.GPUs = atoiDefault(r.FormValue("gpus"), 2)

	vm := viewModel{
		Workloads:  []string{"cholesky", "qr", "lu", "wavefront", "chains", "uniform"},
		Algorithms: expr.DAGAlgorithms(),
		Form:       form,
	}
	res, err := runSchedule(form)
	if err != nil {
		vm.Error = err.Error()
	} else {
		vm.Result = res
	}
	s.render(w, vm)
}

// handleCompare runs every DAG algorithm on the same workload and renders
// a comparison table.
func (s *server) handleCompare(w http.ResponseWriter, r *http.Request) {
	form := defaultForm()
	form.Workload = r.FormValue("workload")
	form.N = atoiDefault(r.FormValue("n"), 8)
	form.CPUs = atoiDefault(r.FormValue("cpus"), 8)
	form.GPUs = atoiDefault(r.FormValue("gpus"), 2)
	vm := viewModel{
		Workloads:  []string{"cholesky", "qr", "lu", "wavefront", "chains", "uniform"},
		Algorithms: expr.DAGAlgorithms(),
		Form:       form,
	}
	rows, err := runCompare(form)
	if err != nil {
		vm.Error = err.Error()
	} else {
		vm.Compare = rows
	}
	s.render(w, vm)
}

func runCompare(form scheduleForm) ([]compareRow, error) {
	if form.N < 1 || form.N > 16 {
		return nil, fmt.Errorf("compare limits n to [1, 16], got %d", form.N)
	}
	pl := platform.Platform{CPUs: form.CPUs, GPUs: form.GPUs}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	var rows []compareRow
	for _, alg := range expr.DAGAlgorithms() {
		g, err := buildServeWorkload(form.Workload, form.N)
		if err != nil {
			return nil, err
		}
		sched, err := expr.RunDAG(alg, g, pl)
		if err != nil {
			return nil, err
		}
		lower, err := bounds.DAGLowerRefined(g, pl)
		if err != nil {
			return nil, err
		}
		rows = append(rows, compareRow{
			Algorithm:   alg,
			Makespan:    sched.Makespan(),
			Ratio:       sched.Makespan() / lower,
			Spoliations: sched.SpoliationCount(),
			CPUAccel:    sched.EquivalentAccel(g.Tasks(), platform.CPU),
			GPUAccel:    sched.EquivalentAccel(g.Tasks(), platform.GPU),
		})
	}
	return rows, nil
}

func (s *server) render(w http.ResponseWriter, vm viewModel) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := s.page.Execute(w, vm); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func atoiDefault(s string, def int) int {
	if v, err := strconv.Atoi(s); err == nil {
		return v
	}
	return def
}

// runSchedule builds the workload, runs the algorithm and packages the
// metrics; sizes are clamped so a stray request cannot wedge the server.
func runSchedule(form scheduleForm) (*scheduleResult, error) {
	if form.N < 1 || form.N > 24 {
		return nil, fmt.Errorf("n must be in [1, 24], got %d", form.N)
	}
	if form.CPUs < 0 || form.CPUs > 64 || form.GPUs < 0 || form.GPUs > 16 {
		return nil, fmt.Errorf("platform out of range: %d CPUs, %d GPUs", form.CPUs, form.GPUs)
	}
	pl := platform.Platform{CPUs: form.CPUs, GPUs: form.GPUs}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	g, err := buildServeWorkload(form.Workload, form.N)
	if err != nil {
		return nil, err
	}
	sched, err := expr.RunDAG(form.Alg, g, pl)
	if err != nil {
		return nil, err
	}
	if err := sched.Validate(g.Tasks(), g); err != nil {
		return nil, err
	}
	lower, err := bounds.DAGLowerRefined(g, pl)
	if err != nil {
		return nil, err
	}
	return &scheduleResult{
		Tasks:       g.Len(),
		Makespan:    sched.Makespan(),
		Lower:       lower,
		Ratio:       sched.Makespan() / lower,
		Spoliations: sched.SpoliationCount(),
		CPUAccel:    sched.EquivalentAccel(g.Tasks(), platform.CPU),
		GPUAccel:    sched.EquivalentAccel(g.Tasks(), platform.GPU),
		SVG:         template.HTML(trace.SVG(sched, 1100)),
	}, nil
}

func buildServeWorkload(name string, n int) (*dag.Graph, error) {
	switch name {
	case "cholesky", "qr", "lu":
		return workloads.Build(workloads.Factorization(name), n)
	case "wavefront":
		return workloads.DefaultWavefront(n), nil
	case "chains":
		even := platform.Task{CPUTime: 10, GPUTime: 1}
		odd := platform.Task{CPUTime: 2, GPUTime: 3}
		return workloads.BagOfChains(n, 10, even, odd), nil
	case "uniform":
		rng := rand.New(rand.NewSource(1))
		in := workloads.UniformInstance(n*10, 1, 100, 0.2, 40, rng)
		return dag.FromInstance(in), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

const pageHTML = `<!DOCTYPE html>
<html>
<head>
<title>HeteroPrio schedule explorer</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 1200px; }
fieldset { display: inline-block; border: 1px solid #ccc; padding: 0.8em 1.2em; }
label { margin-right: 1em; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #ccc; padding: 0.3em 0.8em; text-align: right; }
.error { color: #b00; font-weight: bold; }
</style>
</head>
<body>
<h1>HeteroPrio schedule explorer</h1>
<p>Affinity-based list scheduling with spoliation on a simulated CPU+GPU
node (Beaumont, Eyraud-Dubois, Kumar — IPDPS 2017).</p>
<form action="/schedule" method="get">
<fieldset>
<label>workload
<select name="workload">
{{range .Workloads}}<option value="{{.}}" {{if eq . $.Form.Workload}}selected{{end}}>{{.}}</option>{{end}}
</select></label>
<label>N <input type="number" name="n" value="{{.Form.N}}" min="1" max="24" size="4"></label>
<label>CPUs <input type="number" name="cpus" value="{{.Form.CPUs}}" min="0" max="64" size="4"></label>
<label>GPUs <input type="number" name="gpus" value="{{.Form.GPUs}}" min="0" max="16" size="4"></label>
<label>algorithm
<select name="alg">
{{range .Algorithms}}<option value="{{.}}" {{if eq . $.Form.Alg}}selected{{end}}>{{.}}</option>{{end}}
</select></label>
<button type="submit">schedule</button>
<button type="submit" formaction="/compare">compare all</button>
</fieldset>
</form>
{{if .Error}}<p class="error">{{.Error}}</p>{{end}}
{{if .Compare}}
<table>
<tr><th>algorithm</th><th>makespan (ms)</th><th>ratio</th><th>spoliations</th>
<th>CPU equiv. accel</th><th>GPU equiv. accel</th></tr>
{{range .Compare}}
<tr><td style="text-align:left">{{.Algorithm}}</td><td>{{printf "%.2f" .Makespan}}</td>
<td>{{printf "%.3f" .Ratio}}</td><td>{{.Spoliations}}</td>
<td>{{printf "%.2f" .CPUAccel}}</td><td>{{printf "%.2f" .GPUAccel}}</td></tr>
{{end}}
</table>
{{end}}
{{with .Result}}
<table>
<tr><th>tasks</th><th>makespan (ms)</th><th>lower bound (ms)</th><th>ratio</th>
<th>spoliations</th><th>CPU equiv. accel</th><th>GPU equiv. accel</th></tr>
<tr><td>{{.Tasks}}</td><td>{{printf "%.2f" .Makespan}}</td><td>{{printf "%.2f" .Lower}}</td>
<td>{{printf "%.3f" .Ratio}}</td><td>{{.Spoliations}}</td>
<td>{{printf "%.2f" .CPUAccel}}</td><td>{{printf "%.2f" .GPUAccel}}</td></tr>
</table>
{{.SVG}}
{{end}}
</body>
</html>`

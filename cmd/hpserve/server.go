package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"html/template"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/bounds"
	"repro/internal/dag"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// serveSeed is the fixed seed of the serving path's workload generators
// (only "uniform" draws randomness). It is part of every cache key, so a
// future per-request seed parameter starts cache-correct by construction.
const serveSeed = 1

// serveConfig sizes the serving front end: the result cache, the
// admission valve, and the per-request deadline.
type serveConfig struct {
	// cacheEntries bounds the LRU result cache (entries, not bytes).
	cacheEntries int
	// queueDepth bounds how many requests may wait for an execution slot;
	// arrivals beyond it are shed with 429.
	queueDepth int
	// maxConcurrent bounds simultaneously executing requests; <= 0 means
	// the simulation pool's width.
	maxConcurrent int
	// requestTimeout is the per-request deadline; a request that cannot
	// finish in time is rejected with 503.
	requestTimeout time.Duration
	// traceEntries bounds the ring of finished request traces served at
	// /traces and /trace/{id}.
	traceEntries int
	// l2 is the shared second cache tier layered under the local LRU
	// (nil = single-tier). In -mode=cluster every replica shares one
	// in-process MemoryL2; a multi-process deployment wires a PeerL2 here.
	l2 shard.L2
	// l2Store, when non-nil, is additionally served to peers at
	// shard.L2Path so other replicas can fill from this process.
	l2Store *shard.MemoryL2
	// canonical zeroes the volatile run-summary fields (ID, When, Elapsed)
	// in responses, making response bodies pure functions of the request —
	// the property the sharded-determinism CI diff asserts.
	canonical bool
}

func defaultServeConfig() serveConfig {
	return serveConfig{
		cacheEntries: 256, queueDepth: 64,
		requestTimeout: 10 * time.Second, traceEntries: 256,
	}
}

// server carries the parsed templates and the observability state: a
// metrics registry scraped at /metrics, the live scheduler observer
// feeding it, a ring of recent run summaries served at /runs, and the
// structured run logger. Handlers are safe for concurrent use.
type server struct {
	mux  *http.ServeMux
	page *template.Template
	log  *slog.Logger

	reg         *obs.Registry
	pool        *engine.Pool
	sched       *obs.SchedulerMetrics
	runs        *obs.RunLog
	runMakespan *obs.Histogram
	runRatio    *obs.Histogram
	runsTotal   *obs.CounterVec
	httpReqs    *obs.CounterVec
	httpDur     *obs.HistogramVec
	runSeq      atomic.Uint64

	// Request tracing: every request through a traced handler gets a root
	// span; finished traces land in the tracer's ring (/traces,
	// /trace/{id}) and feed the HDR latency families, whose tail-bucket
	// exemplars carry the trace IDs of the slow requests that landed there.
	tracer      *obs.Tracer
	latReq      *obs.HDRVec
	latPhase    *obs.HDRVec
	tracesTotal *obs.Counter
	traceDrops  *obs.Counter

	// Serving front end: exact result caches (schedule pages and compare
	// tables cache separately but share the hp_cache_* metric families),
	// each a two-tier shard.Tiered whose L2 is shared across replicas
	// (nil L2 degrades to the plain LRU), the admission valve, and the
	// per-request deadline.
	schedCache   *shard.Tiered[*scheduleResult]
	compareCache *shard.Tiered[[]obs.RunSummary]
	admit        *serve.Admission
	timeout      time.Duration
	canonical    bool
}

func newServer(logger *slog.Logger, cfg serveConfig) *server {
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.requestTimeout <= 0 {
		cfg.requestTimeout = defaultServeConfig().requestTimeout
	}
	reg := obs.NewRegistry()
	s := &server{
		mux: http.NewServeMux(),
		log: logger,
		reg: reg,
		// One pool shared by every request; its gauges and counters land in
		// the same registry, so /metrics exposes worker occupancy.
		pool:      engine.NewPool(0, reg),
		sched:     obs.NewSchedulerMetrics(reg),
		runs:      obs.NewRunLog(128),
		timeout:   cfg.requestTimeout,
		canonical: cfg.canonical,
		runMakespan: reg.Histogram("hp_run_makespan",
			"Makespans of completed runs in simulated milliseconds.", obs.ExpBuckets(1, 2, 20)),
		runRatio: reg.Histogram("hp_run_ratio",
			"Makespan over the refined lower bound, per completed run.",
			[]float64{1, 1.05, 1.1, 1.2, 1.35, 1.5, 2, 3, 3.42}),
		runsTotal: reg.CounterVec("hp_runs_total",
			"Completed scheduling runs, by algorithm.", "alg"),
		httpReqs: reg.CounterVec("hp_http_requests_total",
			"HTTP requests served, by handler.", "handler"),
		httpDur: reg.HistogramVec("hp_http_request_duration_seconds",
			"HTTP request latency in seconds, by handler.",
			"handler", []float64{0.001, 0.005, 0.02, 0.1, 0.5, 2}),
		latReq: reg.HDRVec("hp_latency_request_us",
			"End-to-end request latency in microseconds (HDR, ~3% relative error), by handler; bucket exemplars carry trace IDs.",
			"handler"),
		latPhase: reg.HDRVec("hp_latency_phase_us",
			"Per-phase request latency in microseconds (admission, cache, coalesce, compute, cell, render), by phase; bucket exemplars carry trace IDs.",
			"phase"),
		tracesTotal: reg.Counter("hp_trace_finished_total",
			"Request traces finished and retained in the trace ring."),
		traceDrops: reg.Counter("hp_trace_dropped_spans_total",
			"Spans discarded by the per-trace retention bound."),
	}
	traceEntries := cfg.traceEntries
	if traceEntries <= 0 {
		traceEntries = defaultServeConfig().traceEntries
	}
	s.tracer = obs.NewTracer(traceEntries)
	s.tracer.OnFinish = s.recordTrace
	// Results cross the L2 tier as their JSON encodings; both directions
	// round-trip exactly (floats re-print shortest, times re-print
	// RFC3339Nano), so a peer-filled response is byte-identical to the
	// locally computed one.
	encSched, decSched := jsonCodec[*scheduleResult]()
	encRows, decRows := jsonCodec[[]obs.RunSummary]()
	s.schedCache = shard.NewTiered(serve.NewCache[*scheduleResult](cfg.cacheEntries, reg), cfg.l2, encSched, decSched, reg)
	s.compareCache = shard.NewTiered(serve.NewCache[[]obs.RunSummary](cfg.cacheEntries, reg), cfg.l2, encRows, decRows, reg)
	maxConcurrent := cfg.maxConcurrent
	if maxConcurrent <= 0 {
		maxConcurrent = s.pool.Width()
	}
	s.admit = serve.NewAdmission(maxConcurrent, cfg.queueDepth, reg)
	s.page = template.Must(template.New("page").Parse(pageHTML))
	s.handle("index", "/", s.handleIndex)
	s.handle("schedule", "/schedule", s.handleSchedule)
	s.handle("compare", "/compare", s.handleCompare)
	s.handle("trace", "/trace", s.handleTrace)
	// Introspection endpoints are instrumented but not traced: a /traces
	// poll must not fill the trace ring with reads of the trace ring.
	s.handlePlain("runs", "/runs", s.handleRuns)
	s.handlePlain("tracetree", "/trace/{id}", s.handleTraceTree)
	s.handlePlain("traces", "/traces", s.handleTraces)
	s.handlePlain("metrics", "/metrics", s.reg.Handler().ServeHTTP)
	if cfg.l2Store != nil {
		s.handlePlain("l2", shard.L2Path+"{key}", shard.L2Handler(cfg.l2Store).ServeHTTP)
	}
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// handle registers a named, instrumented, traced handler: request count
// and latency per handler name, a debug log line per request, and a root
// span covering the whole request. The trace ID is returned in the
// X-Trace-Id response header, and the handler sees the span via the
// request context, so every layer below (admission, cache, pool cells,
// compute) hangs its child spans off this root.
func (s *server) handle(name, pattern string, h http.HandlerFunc) {
	reqs := s.httpReqs.With(name) // pre-seed so the series scrapes at 0
	dur := s.httpDur.With(name)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		sp := s.tracer.StartTrace(name)
		sp.Annotate("path", r.URL.Path)
		w.Header().Set("X-Trace-Id", obs.FormatID(sp.TraceID()))
		h(w, r.WithContext(obs.ContextWithSpan(r.Context(), sp)))
		sp.End()
		elapsed := time.Since(start)
		dur.Observe(elapsed.Seconds())
		s.log.Debug("http request", "handler", name, "path", r.URL.Path, "elapsed", elapsed)
	})
}

// handlePlain registers a named, instrumented handler without tracing —
// for the introspection endpoints whose own requests would otherwise
// pollute the trace ring they expose.
func (s *server) handlePlain(name, pattern string, h http.HandlerFunc) {
	reqs := s.httpReqs.With(name)
	dur := s.httpDur.With(name)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		h(w, r)
		elapsed := time.Since(start)
		dur.Observe(elapsed.Seconds())
		s.log.Debug("http request", "handler", name, "path", r.URL.Path, "elapsed", elapsed)
	})
}

// recordTrace is the tracer's OnFinish hook: it feeds the HDR latency
// families from the finished trace — the root duration into the request
// family, every child span into the phase family — carrying the trace ID
// as the bucket exemplar, so a tail-latency bucket on /metrics points at
// a concrete /trace/{id} to explain it.
func (s *server) recordTrace(td *obs.TraceData) {
	s.tracesTotal.Inc()
	if d := td.Dropped(); d > 0 {
		s.traceDrops.Add(float64(d))
	}
	s.latReq.With(td.Name).RecordExemplar(int64(td.Duration()/time.Microsecond), td.ID)
	for _, sd := range td.Spans() {
		if sd.Parent == 0 {
			continue // the root is the request family's sample
		}
		s.latPhase.With(sd.Name).RecordExemplar(int64(sd.Duration()/time.Microsecond), td.ID)
	}
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// viewModel feeds the page template.
type viewModel struct {
	Workloads  []string
	Algorithms []string
	Form       scheduleForm
	Result     *scheduleResult
	Compare    []obs.RunSummary
	Error      string
}

type scheduleForm struct {
	Workload string
	N        int
	CPUs     int
	GPUs     int
	Alg      string
}

// scheduleResult is the run summary plus the rendered Gantt chart.
type scheduleResult struct {
	obs.RunSummary
	SVG template.HTML
}

func defaultForm() scheduleForm {
	return scheduleForm{Workload: "cholesky", N: 8, CPUs: 8, GPUs: 2, Alg: "HeteroPrio-min"}
}

func parseForm(r *http.Request) scheduleForm {
	form := defaultForm()
	if v := r.FormValue("workload"); v != "" {
		form.Workload = v
	}
	if v := r.FormValue("alg"); v != "" {
		form.Alg = v
	}
	form.N = atoiDefault(r.FormValue("n"), form.N)
	form.CPUs = atoiDefault(r.FormValue("cpus"), form.CPUs)
	form.GPUs = atoiDefault(r.FormValue("gpus"), form.GPUs)
	return form
}

func serveWorkloads() []string {
	return []string{"cholesky", "qr", "lu", "wavefront", "chains", "uniform"}
}

func (s *server) viewModel(form scheduleForm) viewModel {
	return viewModel{Workloads: serveWorkloads(), Algorithms: expr.DAGAlgorithms(), Form: form}
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.render(r, w, s.viewModel(defaultForm()), http.StatusOK)
}

// wantJSON reports whether the request asked for a JSON body instead of
// the HTML page (format=json). The JSON bodies are marshalled from the
// cached values, so a cache hit is byte-identical to the miss that
// populated it.
func wantJSON(r *http.Request) bool { return r.FormValue("format") == "json" }

func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	form := parseForm(r)
	res, err := s.runSchedule(ctx, form)
	if err != nil {
		s.fail(w, r, form, err)
		return
	}
	if wantJSON(r) {
		s.writeJSONCtx(r.Context(), w, res.RunSummary)
		return
	}
	vm := s.viewModel(form)
	vm.Result = res
	s.render(r, w, vm, http.StatusOK)
}

// handleCompare runs every DAG algorithm on the same workload and renders
// a comparison table (or, with format=json, the rows as JSON).
func (s *server) handleCompare(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	form := parseForm(r)
	rows, err := s.runCompare(ctx, form)
	if err != nil {
		s.fail(w, r, form, err)
		return
	}
	if wantJSON(r) {
		s.writeJSONCtx(r.Context(), w, struct {
			Rows []obs.RunSummary `json:"rows"`
		}{Rows: rows})
		return
	}
	vm := s.viewModel(form)
	vm.Compare = rows
	s.render(r, w, vm, http.StatusOK)
}

// fail writes an error response in the format the request asked for,
// mapping the error to its HTTP status.
func (s *server) fail(w http.ResponseWriter, r *http.Request, form scheduleForm, err error) {
	status := s.errStatus(err)
	if wantJSON(r) {
		jsonError(w, err, status)
		return
	}
	vm := s.viewModel(form)
	vm.Error = err.Error()
	s.render(r, w, vm, status)
}

// writeJSON marshals v indented (matching /runs) and writes it as the
// whole response body. A traced request gets a "render" span covering
// the marshal and the response write.
func (s *server) writeJSON(w http.ResponseWriter, v any) {
	s.writeJSONCtx(context.Background(), w, v)
}

func (s *server) writeJSONCtx(ctx context.Context, w http.ResponseWriter, v any) {
	sp := obs.SpanFromContext(ctx)
	var rsp *obs.Span
	if sp != nil {
		rsp = sp.StartChild("render")
	}
	body, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		jsonError(w, err, http.StatusInternalServerError)
		if rsp != nil {
			rsp.End()
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
	if rsp != nil {
		rsp.End()
	}
}

// handleRuns serves the recent run summaries as JSON, newest first.
func (s *server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	payload := struct {
		Runs []obs.RunSummary `json:"runs"`
	}{Runs: s.runs.Recent()}
	body, err := json.MarshalIndent(payload, "", " ")
	if err != nil {
		jsonError(w, err, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// handleTrace runs the requested schedule with a live obs.Timeline
// attached and serves the Perfetto/Chrome trace-event JSON bridged from
// the captured events (falling back to the post-hoc trace for schedulers
// outside the HeteroPrio event loop, which emit no events).
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	form := parseForm(r)
	// Traces attach a live Timeline, so they are never cached, but they
	// still count against the admission valve like any other simulation.
	release, err := s.admit.Acquire(ctx)
	if err != nil {
		jsonError(w, err, s.errStatus(err))
		return
	}
	defer release()
	tl := obs.NewTimeline()
	sched, g, _, err := s.executeRun(ctx, form, tl)
	if err != nil {
		jsonError(w, err, s.errStatus(err))
		return
	}
	names := make(map[int]string, g.Len())
	for _, t := range g.Tasks() {
		names[t.ID] = t.Name
	}
	var raw []byte
	if tl.Len() > 0 {
		raw, err = trace.ChromeLive(tl, sched.Platform, names)
	} else {
		raw, err = trace.Chrome(sched, names)
	}
	if err != nil {
		jsonError(w, err, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(raw)
}

// handleTraceTree serves one retained request trace as its span tree
// (JSON): phase start offsets, durations, self times, and annotations.
func (s *server) handleTraceTree(w http.ResponseWriter, r *http.Request) {
	id, ok := obs.ParseID(r.PathValue("id"))
	if !ok {
		jsonError(w, fmt.Errorf("malformed trace id %q", r.PathValue("id")), http.StatusBadRequest)
		return
	}
	td := s.tracer.Trace(id)
	if td == nil {
		jsonError(w, fmt.Errorf("trace %s not found (evicted or never existed)", obs.FormatID(id)), http.StatusNotFound)
		return
	}
	s.writeJSON(w, td.Tree())
}

// traceListEntry is one row of the /traces listing.
type traceListEntry struct {
	TraceID    string `json:"trace_id"`
	Name       string `json:"name"`
	DurationUS int64  `json:"duration_us"`
	Spans      int    `json:"spans"`
	Finished   bool   `json:"finished"`
}

// handleTraces lists the retained traces slowest-first (the tail-latency
// investigation order), bounded by ?limit= (default 50).
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	limit := atoiDefault(r.FormValue("limit"), 50)
	if limit < 1 {
		limit = 1
	}
	rec := s.tracer.Recent()
	rows := make([]traceListEntry, 0, len(rec))
	for _, td := range rec {
		rows = append(rows, traceListEntry{
			TraceID:    obs.FormatID(td.ID),
			Name:       td.Name,
			DurationUS: int64(td.Duration() / time.Microsecond),
			Spans:      len(td.Spans()),
			Finished:   td.Finished(),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].DurationUS > rows[j].DurationUS })
	if len(rows) > limit {
		rows = rows[:limit]
	}
	s.writeJSON(w, struct {
		Traces []traceListEntry `json:"traces"`
	}{Traces: rows})
}

// internalError marks failures that are the server's fault (HTTP 500);
// everything else reported by executeRun is a client input error (400).
type internalError struct{ err error }

func (e internalError) Error() string { return e.err.Error() }
func (e internalError) Unwrap() error { return e.err }

// errStatus maps a run error to its HTTP status: 429 for shed requests,
// 503 for expired deadlines (counted via the admission metrics — this is
// the one place that sees deadlines from both the queue wait and the
// coalesced-computation wait), 500 for server faults, 400 for bad input.
func (s *server) errStatus(err error) int {
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		s.admit.MarkDeadline()
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		// The client went away; 503 is what a proxy retry wants to see.
		return http.StatusServiceUnavailable
	default:
		if _, ok := err.(internalError); ok {
			return http.StatusInternalServerError
		}
		return http.StatusBadRequest
	}
}

// validateServeForm bounds the request sizes so a stray request cannot
// wedge the server, and returns the validated platform.
func validateServeForm(form scheduleForm) (platform.Platform, error) {
	if form.N < 1 || form.N > 24 {
		return platform.Platform{}, fmt.Errorf("n must be in [1, 24], got %d", form.N)
	}
	if form.CPUs < 0 || form.CPUs > 64 || form.GPUs < 0 || form.GPUs > 16 {
		return platform.Platform{}, fmt.Errorf("platform out of range: %d CPUs, %d GPUs", form.CPUs, form.GPUs)
	}
	pl := platform.Platform{CPUs: form.CPUs, GPUs: form.GPUs}
	if err := pl.Validate(); err != nil {
		return platform.Platform{}, err
	}
	return pl, nil
}

// requestKeyFor validates the form, generates its workload, and returns
// the canonical cache key of the request under the given algorithm label.
// The instance content — not the form text — is what gets hashed, so the
// key survives cosmetic request differences and changes meaning the
// moment a generator produces different durations; the workload name and
// size ride along as parameters because they determine task identities
// (names, IDs) in the rendered output. Generation is cheap next to
// simulation, so the extra build on a miss (executeRun rebuilds its own
// graph) costs noise.
//
// It is a free function on purpose: the replica router derives the same
// key from the same request without holding any server state, which is
// what makes router placement and replica caching agree.
func requestKeyFor(form scheduleForm, algLabel string) (serve.Key, error) {
	pl, err := validateServeForm(form)
	if err != nil {
		return serve.Key{}, err
	}
	g, err := buildServeWorkload(form.Workload, form.N)
	if err != nil {
		return serve.Key{}, err
	}
	key := serve.KeyOf(g.Tasks(), pl, algLabel, serveSeed,
		"workload="+form.Workload, "n="+strconv.Itoa(form.N))
	return key, nil
}

// executeRun validates the form, builds the workload, runs the algorithm
// with the server's live metrics observer (plus tl when non-nil), records
// the run summary and returns the schedule. The context carries the
// request deadline: a request that expired while queued or coalesced
// never reaches the simulator.
func (s *server) executeRun(ctx context.Context, form scheduleForm, tl *obs.Timeline) (*sim.Schedule, *dag.Graph, obs.RunSummary, error) {
	var zero obs.RunSummary
	if err := ctx.Err(); err != nil {
		return nil, nil, zero, err
	}
	pl, err := validateServeForm(form)
	if err != nil {
		return nil, nil, zero, err
	}
	g, err := buildServeWorkload(form.Workload, form.N)
	if err != nil {
		return nil, nil, zero, err
	}
	var o obs.Observer = s.sched
	if tl != nil {
		o = obs.Multi(s.sched, tl)
	}
	// The compute span covers simulation + validation + bound + summary,
	// bridged to the scheduler's observer stream: its annotations carry
	// the simulated task/spoliation/makespan quantities of this very run.
	if sp := obs.SpanFromContext(ctx); sp != nil {
		csp := sp.StartChild("compute")
		csp.Annotate("alg", form.Alg)
		csp.Annotate("workload", form.Workload)
		so := obs.NewSpanObserver(csp)
		o = obs.Multi(o, so)
		defer func() {
			so.Finish()
			csp.End()
		}()
	}
	start := time.Now()
	sched, err := expr.RunDAGObserved(form.Alg, g, pl, o)
	if err != nil {
		return nil, nil, zero, err
	}
	if err := sched.Validate(g.Tasks(), g); err != nil {
		return nil, nil, zero, internalError{fmt.Errorf("schedule validation failed: %w", err)}
	}
	lower, err := bounds.DAGLowerRefined(g, pl)
	if err != nil {
		return nil, nil, zero, internalError{err}
	}
	sum := obs.Summarize(sched, g.Tasks(), lower)
	sum.ID = fmt.Sprintf("run-%06d", s.runSeq.Add(1))
	sum.When = time.Now()
	sum.Workload = form.Workload
	sum.Alg = form.Alg
	sum.N = form.N
	sum.Elapsed = float64(time.Since(start).Microseconds()) / 1000
	s.recordRun(sum)
	if s.canonical {
		// The run log and metrics above keep the real identity and timing;
		// only the response (and therefore the cached/L2-shipped bytes)
		// loses the volatile fields, making it a pure function of the
		// request — what the cross-replica byte-identity check diffs.
		sum.ID, sum.When, sum.Elapsed = "", time.Time{}, 0
	}
	return sched, g, sum, nil
}

// recordRun feeds the run-level metrics, the /runs ring and the run log.
func (s *server) recordRun(sum obs.RunSummary) {
	s.runs.Add(sum)
	s.runMakespan.Observe(sum.Makespan)
	if sum.Ratio > 0 {
		s.runRatio.Observe(sum.Ratio)
	}
	s.runsTotal.With(sum.Alg).Inc()
	s.log.Info("run complete",
		"id", sum.ID, "workload", sum.Workload, "alg", sum.Alg, "n", sum.N,
		"cpus", sum.CPUs, "gpus", sum.GPUs, "tasks", sum.Tasks,
		"makespan_ms", sum.Makespan, "ratio", sum.Ratio,
		"spoliations", sum.Spoliations, "wasted_ms", sum.WastedWork,
		"elapsed_ms", sum.Elapsed)
}

// runSchedule serves one schedule request through the front end: cache
// lookup (with coalescing) first, then admission, then the simulation as
// a single pool cell. Cache hits touch neither the admission valve nor
// the pool, so a repeated request is pure memory traffic.
func (s *server) runSchedule(ctx context.Context, form scheduleForm) (*scheduleResult, error) {
	key, err := requestKeyFor(form, "schedule:"+form.Alg)
	if err != nil {
		return nil, err
	}
	res, _, err := s.schedCache.DoCtx(ctx, key, func(ctx context.Context) (*scheduleResult, error) {
		release, err := s.admit.Acquire(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		return engine.One(ctx, s.pool, func(ctx context.Context) (*scheduleResult, error) {
			sched, _, sum, err := s.executeRun(ctx, form, nil)
			if err != nil {
				return nil, err
			}
			return &scheduleResult{RunSummary: sum, SVG: template.HTML(trace.SVG(sched, 1100))}, nil
		})
	})
	return res, err
}

// runCompare fans every DAG algorithm out on the shared pool, behind the
// same cache/admission front end as runSchedule. The key ignores
// form.Alg (every algorithm runs) but pins the algorithm list, so adding
// an algorithm invalidates old rows. MaxParallel caps one request at
// half the pool, so a single /compare cannot starve concurrent requests;
// Map's ordered reduction keeps the table rows in DAGAlgorithms order
// regardless of completion order.
func (s *server) runCompare(ctx context.Context, form scheduleForm) ([]obs.RunSummary, error) {
	if form.N < 1 || form.N > 16 {
		return nil, fmt.Errorf("compare limits n to [1, 16], got %d", form.N)
	}
	algs := expr.DAGAlgorithms()
	key, err := requestKeyFor(form, "compare:"+strings.Join(algs, ","))
	if err != nil {
		return nil, err
	}
	rows, _, err := s.compareCache.DoCtx(ctx, key, func(ctx context.Context) ([]obs.RunSummary, error) {
		release, err := s.admit.Acquire(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		perRequest := (s.pool.Width() + 1) / 2
		if perRequest < 1 {
			perRequest = 1
		}
		return engine.Map(ctx, s.pool,
			engine.Job{Cells: len(algs), MaxParallel: perRequest},
			func(ctx context.Context, c engine.Cell) (obs.RunSummary, error) {
				f := form
				f.Alg = algs[c.Index]
				_, _, sum, err := s.executeRun(ctx, f, nil)
				return sum, err
			})
	})
	return rows, err
}

// render executes the page template into a buffer first, so template
// failures surface as a clean 500 instead of a half-written page. A
// traced request gets a "render" span covering template execution and
// the response write.
func (s *server) render(r *http.Request, w http.ResponseWriter, vm viewModel, status int) {
	sp := obs.SpanFromContext(r.Context())
	var rsp *obs.Span
	if sp != nil {
		rsp = sp.StartChild("render")
	}
	var buf bytes.Buffer
	if err := s.page.Execute(&buf, vm); err != nil {
		s.log.Error("template render failed", "err", err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		if rsp != nil {
			rsp.End()
		}
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(status)
	_, _ = buf.WriteTo(w)
	if rsp != nil {
		rsp.End()
	}
}

// jsonError writes an error payload with the right status and type.
func jsonError(w http.ResponseWriter, err error, status int) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// jsonCodec builds the encode/decode pair a Tiered cache uses to ship
// values across the L2 tier.
func jsonCodec[V any]() (func(V) ([]byte, error), func([]byte) (V, error)) {
	return func(v V) ([]byte, error) { return json.Marshal(v) },
		func(b []byte) (V, error) {
			var v V
			err := json.Unmarshal(b, &v)
			return v, err
		}
}

func atoiDefault(s string, def int) int {
	if v, err := strconv.Atoi(s); err == nil {
		return v
	}
	return def
}

func buildServeWorkload(name string, n int) (*dag.Graph, error) {
	switch name {
	case "cholesky", "qr", "lu":
		return workloads.Build(workloads.Factorization(name), n)
	case "wavefront":
		return workloads.DefaultWavefront(n), nil
	case "chains":
		even := platform.Task{CPUTime: 10, GPUTime: 1}
		odd := platform.Task{CPUTime: 2, GPUTime: 3}
		return workloads.BagOfChains(n, 10, even, odd), nil
	case "uniform":
		rng := rand.New(rand.NewSource(1))
		in := workloads.UniformInstance(n*10, 1, 100, 0.2, 40, rng)
		return dag.FromInstance(in), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

const pageHTML = `<!DOCTYPE html>
<html>
<head>
<title>HeteroPrio schedule explorer</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 1200px; }
fieldset { display: inline-block; border: 1px solid #ccc; padding: 0.8em 1.2em; }
label { margin-right: 1em; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #ccc; padding: 0.3em 0.8em; text-align: right; }
.error { color: #b00; font-weight: bold; }
nav { margin-bottom: 1em; font-size: 0.9em; }
</style>
</head>
<body>
<h1>HeteroPrio schedule explorer</h1>
<p>Affinity-based list scheduling with spoliation on a simulated CPU+GPU
node (Beaumont, Eyraud-Dubois, Kumar — IPDPS 2017).</p>
<nav>observability: <a href="/metrics">/metrics</a> ·
<a href="/runs">/runs</a> ·
<a href="/debug/pprof/">/debug/pprof</a></nav>
<form action="/schedule" method="get">
<fieldset>
<label>workload
<select name="workload">
{{range .Workloads}}<option value="{{.}}" {{if eq . $.Form.Workload}}selected{{end}}>{{.}}</option>{{end}}
</select></label>
<label>N <input type="number" name="n" value="{{.Form.N}}" min="1" max="24" size="4"></label>
<label>CPUs <input type="number" name="cpus" value="{{.Form.CPUs}}" min="0" max="64" size="4"></label>
<label>GPUs <input type="number" name="gpus" value="{{.Form.GPUs}}" min="0" max="16" size="4"></label>
<label>algorithm
<select name="alg">
{{range .Algorithms}}<option value="{{.}}" {{if eq . $.Form.Alg}}selected{{end}}>{{.}}</option>{{end}}
</select></label>
<button type="submit">schedule</button>
<button type="submit" formaction="/compare">compare all</button>
</fieldset>
</form>
{{if .Error}}<p class="error">{{.Error}}</p>{{end}}
{{if .Compare}}
<table>
<tr><th>algorithm</th><th>makespan (ms)</th><th>ratio</th><th>spoliations</th>
<th>wasted (ms)</th><th>CPU equiv. accel</th><th>GPU equiv. accel</th></tr>
{{range .Compare}}
<tr><td style="text-align:left">{{.Alg}}</td><td>{{printf "%.2f" .Makespan}}</td>
<td>{{printf "%.3f" .Ratio}}</td><td>{{.Spoliations}}</td>
<td>{{printf "%.2f" .WastedWork}}</td>
<td>{{printf "%.2f" .CPUEquivAccel}}</td><td>{{printf "%.2f" .GPUEquivAccel}}</td></tr>
{{end}}
</table>
{{end}}
{{with .Result}}
<table>
<tr><th>run</th><th>tasks</th><th>makespan (ms)</th><th>lower bound (ms)</th><th>ratio</th>
<th>spoliations</th><th>wasted (ms)</th><th>CPU equiv. accel</th><th>GPU equiv. accel</th></tr>
<tr><td>{{.ID}}</td><td>{{.Tasks}}</td><td>{{printf "%.2f" .Makespan}}</td><td>{{printf "%.2f" .LowerBound}}</td>
<td>{{printf "%.3f" .Ratio}}</td><td>{{.Spoliations}}</td><td>{{printf "%.2f" .WastedWork}}</td>
<td>{{printf "%.2f" .CPUEquivAccel}}</td><td>{{printf "%.2f" .GPUEquivAccel}}</td></tr>
</table>
{{.SVG}}
{{end}}
</body>
</html>`

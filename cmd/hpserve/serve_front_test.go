package main

import (
	"context"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/expr"
	"repro/internal/serve"
)

// metricValue scrapes /metrics and returns the value of an unlabelled
// series, so the tests observe the server exactly as Prometheus would.
func metricValue(t *testing.T, srv http.Handler, name string) float64 {
	t.Helper()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in /metrics", name)
	return 0
}

// TestScheduleCacheByteIdentical: a repeated /schedule request is served
// from the cache — the hit counter moves, the pool does not, and the JSON
// body is byte-for-byte the first response (including run ID and
// timestamp, which would differ on a recompute).
func TestScheduleCacheByteIdentical(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	q := url.Values{
		"workload": {"cholesky"}, "n": {"6"}, "cpus": {"4"}, "gpus": {"2"},
		"alg": {"HeteroPrio-min"}, "format": {"json"},
	}
	code, first := get(t, srv, "/schedule?"+q.Encode())
	if code != http.StatusOK {
		t.Fatalf("first request: status %d, body %s", code, first)
	}
	if !strings.Contains(first, "run-000001") {
		t.Fatalf("first body missing run ID: %s", first)
	}
	cells := metricValue(t, srv, "hp_pool_cells_total")

	code, second := get(t, srv, "/schedule?"+q.Encode())
	if code != http.StatusOK {
		t.Fatalf("second request: status %d", code)
	}
	if second != first {
		t.Errorf("cache hit not byte-identical:\nfirst:  %s\nsecond: %s", first, second)
	}
	if hits := metricValue(t, srv, serve.MetricCacheHits); hits != 1 {
		t.Errorf("hp_cache_hits_total = %v, want 1", hits)
	}
	if misses := metricValue(t, srv, serve.MetricCacheMisses); misses != 1 {
		t.Errorf("hp_cache_misses_total = %v, want 1", misses)
	}
	if after := metricValue(t, srv, "hp_pool_cells_total"); after != cells {
		t.Errorf("cache hit ran the pool: cells %v -> %v", cells, after)
	}

	// The HTML rendering of the same request is also a hit (same key), and
	// a different algorithm is a fresh miss.
	q.Del("format")
	if code, _ := get(t, srv, "/schedule?"+q.Encode()); code != http.StatusOK {
		t.Fatalf("html request: status %d", code)
	}
	q.Set("alg", "HEFT-avg")
	if code, _ := get(t, srv, "/schedule?"+q.Encode()); code != http.StatusOK {
		t.Fatalf("other alg: status %d", code)
	}
	if hits, misses := metricValue(t, srv, serve.MetricCacheHits), metricValue(t, srv, serve.MetricCacheMisses); hits != 2 || misses != 2 {
		t.Errorf("after html+other-alg: hits=%v misses=%v, want 2/2", hits, misses)
	}
}

// TestCompareCoalesce fires identical concurrent /compare requests. No
// matter how the goroutines interleave — coalesced onto the in-flight
// computation or served from the populated cache — the workload must be
// simulated exactly once: one miss, K-1 hits, one pool cell per
// algorithm, and every body identical.
func TestCompareCoalesce(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	q := url.Values{
		"workload": {"cholesky"}, "n": {"5"}, "cpus": {"4"}, "gpus": {"2"},
		"format": {"json"},
	}
	const requests = 6
	codes := make([]int, requests)
	bodies := make([]string, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i] = get(t, srv, "/compare?"+q.Encode())
		}(i)
	}
	wg.Wait()
	for i := 0; i < requests; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Errorf("request %d body differs from request 0", i)
		}
	}
	if !strings.Contains(bodies[0], "\"rows\"") {
		t.Fatalf("compare JSON missing rows: %s", bodies[0])
	}
	if misses := metricValue(t, srv, serve.MetricCacheMisses); misses != 1 {
		t.Errorf("hp_cache_misses_total = %v, want 1", misses)
	}
	if hits := metricValue(t, srv, serve.MetricCacheHits); hits != requests-1 {
		t.Errorf("hp_cache_hits_total = %v, want %d", hits, requests-1)
	}
	if cells := metricValue(t, srv, "hp_pool_cells_total"); cells != float64(len(expr.DAGAlgorithms())) {
		t.Errorf("hp_pool_cells_total = %v, want %d (one per algorithm)", cells, len(expr.DAGAlgorithms()))
	}
}

// TestQueueFullSheds: with one execution slot taken and no queue, an
// uncached request is shed with 429 and counted; once the slot frees, the
// same request is admitted.
func TestQueueFullSheds(t *testing.T) {
	srv := newServer(nil, serveConfig{maxConcurrent: 1, queueDepth: 0, requestTimeout: 10 * time.Second})
	release, err := srv.admit.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	q := url.Values{
		"workload": {"cholesky"}, "n": {"4"}, "cpus": {"2"}, "gpus": {"1"},
		"alg": {"HeteroPrio-min"}, "format": {"json"},
	}
	code, body := get(t, srv, "/schedule?"+q.Encode())
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", code, body)
	}
	if !strings.Contains(body, "error") {
		t.Errorf("429 body not a JSON error: %s", body)
	}
	if shed := metricValue(t, srv, serve.MetricServeShed); shed != 1 {
		t.Errorf("hp_serve_shed_total = %v, want 1", shed)
	}
	release()
	if code, _ := get(t, srv, "/schedule?"+q.Encode()); code != http.StatusOK {
		t.Errorf("after release: status %d, want 200", code)
	}
}

// TestDeadlineExpiresQueued: a request that spends its whole deadline
// waiting in the admission queue comes back 503 without ever simulating,
// and the deadline counter records it.
func TestDeadlineExpiresQueued(t *testing.T) {
	srv := newServer(nil, serveConfig{maxConcurrent: 1, queueDepth: 1, requestTimeout: 30 * time.Millisecond})
	release, err := srv.admit.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	q := url.Values{
		"workload": {"cholesky"}, "n": {"4"}, "cpus": {"2"}, "gpus": {"1"},
		"alg": {"HeteroPrio-min"}, "format": {"json"},
	}
	code, body := get(t, srv, "/schedule?"+q.Encode())
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", code, body)
	}
	if deadlines := metricValue(t, srv, serve.MetricServeDeadlineExceeded); deadlines != 1 {
		t.Errorf("hp_serve_deadline_exceeded_total = %v, want 1", deadlines)
	}
	if cells := metricValue(t, srv, "hp_pool_cells_total"); cells != 0 {
		t.Errorf("expired request reached the pool: %v cells", cells)
	}
}

// TestMetricsServeSeries: the cache and admission families are exposed on
// /metrics from the start, so dashboards see zeros instead of gaps.
func TestMetricsServeSeries(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	_, body := get(t, srv, "/metrics")
	for _, want := range []string{
		serve.MetricCacheHits, serve.MetricCacheMisses,
		serve.MetricCacheEvictions, serve.MetricCacheEntries,
		serve.MetricServeQueued, serve.MetricServeShed,
		serve.MetricServeDeadlineExceeded,
	} {
		if !strings.Contains(body, want+" ") {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// Command hpserve is a small web dashboard for exploring schedules: pick
// a workload, a platform shape and an algorithm, and the server renders
// the SVG Gantt chart, the metrics and the comparison against the lower
// bound in the browser.
//
// Observability endpoints: Prometheus metrics at /metrics (HDR latency
// buckets carry exemplar trace IDs), recent run summaries as JSON at
// /runs, live Perfetto traces at /trace, recent request traces at
// /traces (slowest-first) with per-request span trees at /trace/{id},
// and the standard pprof handlers under /debug/pprof/. Structured logs
// go to stderr; -v (or HP_LOG=debug) enables per-request debug lines.
//
//	hpserve -addr :8080 -v
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	verbose := flag.Bool("v", false, "verbose (debug) logging; HP_LOG overrides")
	def := defaultServeConfig()
	cacheEntries := flag.Int("cache-entries", def.cacheEntries,
		"max entries in the schedule result cache (0 keeps a single entry)")
	queueDepth := flag.Int("queue-depth", def.queueDepth,
		"max requests waiting for an execution slot before shedding with 429")
	requestTimeout := flag.Duration("request-timeout", def.requestTimeout,
		"per-request deadline; expired requests are rejected with 503")
	traceEntries := flag.Int("trace-entries", def.traceEntries,
		"finished request traces retained for /traces and /trace/{id}")
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, *verbose)

	cfg := serveConfig{
		cacheEntries:   *cacheEntries,
		queueDepth:     *queueDepth,
		requestTimeout: *requestTimeout,
		traceEntries:   *traceEntries,
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(logger, cfg),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("hpserve listening", "addr", "http://"+*addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		logger.Info("shutdown signal received, draining connections")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown", "err", err)
			os.Exit(1)
		}
		logger.Info("hpserve stopped cleanly")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "hpserve:", err)
			os.Exit(1)
		}
	}
}

// Command hpserve is a small web dashboard for exploring schedules: pick
// a workload, a platform shape and an algorithm, and the server renders
// the SVG Gantt chart, the metrics and the comparison against the lower
// bound in the browser.
//
// Observability endpoints: Prometheus metrics at /metrics (HDR latency
// buckets carry exemplar trace IDs), recent run summaries as JSON at
// /runs, live Perfetto traces at /trace, recent request traces at
// /traces (slowest-first) with per-request span trees at /trace/{id},
// and the standard pprof handlers under /debug/pprof/. Structured logs
// go to stderr; -v (or HP_LOG=debug) enables per-request debug lines.
//
// Modes:
//
//	hpserve -addr :8080 -v                       # one replica (default)
//	hpserve -mode=router -backends a,b,c         # route across replicas
//	hpserve -mode=cluster -cluster-replicas 3    # k replicas + router,
//	                                             # one process
//
// A replica joins a multi-process L2 tier with -peers and -self; a
// cluster shares one in-process L2. The router serves a merged /metrics
// view aggregating every replica's registry, replica health at
// /replicas, and its own routing traces at /traces.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

func main() {
	mode := flag.String("mode", "serve",
		"serve (one replica), router (fan out across -backends), or cluster (replicas + router in one process)")
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	verbose := flag.Bool("v", false, "verbose (debug) logging; HP_LOG overrides")
	def := defaultServeConfig()
	cacheEntries := flag.Int("cache-entries", def.cacheEntries,
		"max entries in the schedule result cache (0 keeps a single entry)")
	queueDepth := flag.Int("queue-depth", def.queueDepth,
		"max requests waiting for an execution slot before shedding with 429")
	requestTimeout := flag.Duration("request-timeout", def.requestTimeout,
		"per-request deadline; expired requests are rejected with 503")
	traceEntries := flag.Int("trace-entries", def.traceEntries,
		"finished request traces retained for /traces and /trace/{id}")
	canonical := flag.Bool("canonical", false,
		"zero volatile run-summary fields (id, when, elapsed) in responses so bodies are pure functions of the request")
	l2Entries := flag.Int("l2-entries", 4096,
		"max entries in the shared L2 cache tier (peers and cluster modes)")
	peers := flag.String("peers", "",
		"comma-separated replica URLs forming a multi-process L2 tier (serve mode; must list every replica in the same order everywhere)")
	self := flag.String("self", "",
		"this replica's URL in -peers (serve mode with -peers)")
	backends := flag.String("backends", "",
		"comma-separated replica URLs to route across (router mode)")
	vnodes := flag.Int("vnodes", shard.DefaultVNodes,
		"virtual nodes per replica on the placement ring (must agree across routers and peers)")
	cooldown := flag.Duration("router-cooldown", time.Second,
		"how long a failed replica is skipped before a request probes it again")
	clusterReplicas := flag.Int("cluster-replicas", 3,
		"replica count for cluster mode")
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, *verbose)

	scfg := serveConfig{
		cacheEntries:   *cacheEntries,
		queueDepth:     *queueDepth,
		requestTimeout: *requestTimeout,
		traceEntries:   *traceEntries,
		canonical:      *canonical,
	}
	rcfg := routerConfig{
		vnodes:       *vnodes,
		cooldown:     *cooldown,
		traceEntries: *traceEntries,
	}

	var handler http.Handler
	var cleanup func()
	switch *mode {
	case "serve":
		if *peers != "" {
			store := shard.NewMemoryL2(*l2Entries, nil)
			peerTier, err := shard.NewPeerL2(splitList(*peers), *self, *vnodes, store, nil, nil)
			if err != nil {
				fatal(err)
			}
			scfg.l2 = peerTier
			scfg.l2Store = store
		}
		handler = newServer(logger, scfg)
	case "router":
		rcfg.backends = splitList(*backends)
		rt, err := newRouterHandler(logger, rcfg)
		if err != nil {
			fatal(err)
		}
		handler = rt
	case "cluster":
		c, err := newCluster(logger, *clusterReplicas, *l2Entries, rcfg, scfg)
		if err != nil {
			fatal(err)
		}
		handler = c.router
		cleanup = c.Close
	default:
		fatal(fmt.Errorf("unknown -mode %q (serve, router, cluster)", *mode))
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("hpserve listening", "mode", *mode, "addr", "http://"+*addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		logger.Info("shutdown signal received, draining connections")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("shutdown", "err", err)
			os.Exit(1)
		}
		if cleanup != nil {
			cleanup()
		}
		logger.Info("hpserve stopped cleanly")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

// splitList parses a comma-separated flag value, dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpserve:", err)
	os.Exit(1)
}

// Command hpserve is a small web dashboard for exploring schedules: pick
// a workload, a platform shape and an algorithm, and the server renders
// the SVG Gantt chart, the metrics and the comparison against the lower
// bound in the browser.
//
//	hpserve -addr :8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()
	srv := newServer()
	log.Printf("hpserve listening on http://%s", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "hpserve:", err)
		os.Exit(1)
	}
}

package main

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shard"
)

// routerKey is the router's shard.KeyFunc: it derives the exact cache key
// a replica would compute for the request, so the router lands every
// request on the replica whose L1 already holds (or will hold) its
// result. /trace responses are never cached, but keying them identically
// keeps repeated trace pulls on one replica.
func routerKey(r *http.Request) (serve.Key, error) {
	form := parseForm(r)
	switch r.URL.Path {
	case "/schedule":
		return requestKeyFor(form, "schedule:"+form.Alg)
	case "/compare":
		return requestKeyFor(form, "compare:"+strings.Join(expr.DAGAlgorithms(), ","))
	case "/trace":
		return requestKeyFor(form, "trace:"+form.Alg)
	}
	return serve.Key{}, fmt.Errorf("no request key for path %q", r.URL.Path)
}

// routerConfig carries the -mode=router flag values.
type routerConfig struct {
	backends     []string
	vnodes       int
	cooldown     time.Duration
	traceEntries int
}

// newRouterHandler builds the replica router for -mode=router.
func newRouterHandler(logger *slog.Logger, cfg routerConfig) (*shard.Router, error) {
	return shard.NewRouter(shard.RouterConfig{
		Backends:     cfg.backends,
		VNodes:       cfg.vnodes,
		Key:          routerKey,
		Cooldown:     cfg.cooldown,
		TraceEntries: cfg.traceEntries,
		Logger:       logger,
	})
}

// cluster is a self-contained scale-out deployment in one process:
// k replicas on ephemeral loopback ports sharing one in-process L2, with
// a router in front. It exists for the shard-smoke and sharded-
// determinism CI jobs and for local experiments — the multi-process
// deployment wires the same pieces together over PeerL2 instead.
type cluster struct {
	router   *shard.Router
	urls     []string
	servers  []*http.Server
	listener []net.Listener
}

// newCluster starts the replica listeners and builds the router. The
// shared L2's metrics land in the router's registry, so the merged
// /metrics view carries the tier's entry and eviction counts exactly
// once (replica registries only count their own tier traffic).
func newCluster(logger *slog.Logger, replicas, l2Entries int, rcfg routerConfig, scfg serveConfig) (*cluster, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("cluster needs at least 1 replica, got %d", replicas)
	}
	routerReg := obs.NewRegistry()
	store := shard.NewMemoryL2(l2Entries, routerReg)
	c := &cluster{}
	for i := 0; i < replicas; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("replica %d listen: %w", i, err)
		}
		cfg := scfg
		cfg.l2 = store
		cfg.l2Store = store
		rep := newServer(logger.With("replica", i), cfg)
		srv := &http.Server{Handler: rep, ReadHeaderTimeout: 5 * time.Second}
		c.listener = append(c.listener, ln)
		c.servers = append(c.servers, srv)
		c.urls = append(c.urls, "http://"+ln.Addr().String())
		go func() { _ = srv.Serve(ln) }()
		logger.Info("replica listening", "index", i, "addr", c.urls[i])
	}
	rcfg.backends = c.urls
	rt, err := shard.NewRouter(shard.RouterConfig{
		Backends:     rcfg.backends,
		VNodes:       rcfg.vnodes,
		Key:          routerKey,
		Cooldown:     rcfg.cooldown,
		TraceEntries: rcfg.traceEntries,
		Registry:     routerReg,
		Logger:       logger,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.router = rt
	return c, nil
}

// Close shuts the replica servers down, draining in-flight requests.
func (c *cluster) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, srv := range c.servers {
		_ = srv.Shutdown(ctx)
	}
}

package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/obs"
)

// doGet performs a request and returns the recorder (header access).
func doGet(t *testing.T, srv http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func scheduleQuery(alg string) string {
	q := url.Values{
		"workload": {"cholesky"}, "n": {"6"}, "cpus": {"4"}, "gpus": {"2"},
		"alg": {alg},
	}
	return q.Encode()
}

// TestRequestTraceTree is the end-to-end explainability check of the
// acceptance criteria: a request's X-Trace-Id leads to /trace/{id}, whose
// span tree contains the admission, cache, compute, and render phases,
// and the tree's phase durations fit inside the root request latency.
func TestRequestTraceTree(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	rec := doGet(t, srv, "/schedule?"+scheduleQuery("HeteroPrio-min"))
	if rec.Code != http.StatusOK {
		t.Fatalf("schedule status %d", rec.Code)
	}
	id := rec.Header().Get("X-Trace-Id")
	if len(id) != 16 {
		t.Fatalf("X-Trace-Id %q", id)
	}

	tr := doGet(t, srv, "/trace/"+id)
	if tr.Code != http.StatusOK {
		t.Fatalf("/trace/%s status %d: %s", id, tr.Code, tr.Body.String())
	}
	var tree obs.TraceTree
	if err := json.Unmarshal(tr.Body.Bytes(), &tree); err != nil {
		t.Fatalf("invalid trace tree JSON: %v", err)
	}
	if tree.TraceID != id || !tree.Finished || tree.DurationUS <= 0 {
		t.Fatalf("tree header: %+v", tree)
	}
	if len(tree.Spans) != 1 {
		t.Fatalf("want one root span, got %d", len(tree.Spans))
	}
	root := tree.Spans[0]
	if root.Name != "schedule" {
		t.Errorf("root span %q", root.Name)
	}

	// Collect phases and check tree timing invariants: every span fits
	// inside the root, and each parent's children fit inside it.
	phases := map[string]int64{}
	var walk func(n *obs.SpanNode)
	walk = func(n *obs.SpanNode) {
		phases[n.Name] = n.DurationUS
		var childSum int64
		for _, c := range n.Children {
			if c.StartUS < n.StartUS || c.StartUS+c.DurationUS > n.StartUS+n.DurationUS+1000 {
				t.Errorf("span %s [%d,+%d] escapes parent %s [%d,+%d]",
					c.Name, c.StartUS, c.DurationUS, n.Name, n.StartUS, n.DurationUS)
			}
			childSum += c.DurationUS
			walk(c)
		}
		if n.SelfUS < 0 || n.SelfUS > n.DurationUS {
			t.Errorf("span %s self %d outside [0, %d]", n.Name, n.SelfUS, n.DurationUS)
		}
	}
	walk(root)
	for _, want := range []string{"admission", "cache", "compute", "render"} {
		if _, ok := phases[want]; !ok {
			t.Errorf("trace tree missing phase %q (have %v)", want, phases)
		}
	}
	// Phase durations must be explainable against the request latency:
	// the sum of the root's direct children cannot exceed the root
	// (they are sequential phases of one request) — allow 1ms tolerance
	// for clock granularity.
	var direct int64
	for _, c := range root.Children {
		direct += c.DurationUS
	}
	if direct > root.DurationUS+1000 {
		t.Errorf("direct phases sum %dus > request %dus", direct, root.DurationUS)
	}
	// The compute span carries the bridged scheduler quantities.
	var computeAnn map[string]any
	walkAnn := func(n *obs.SpanNode) {
		if n.Name == "compute" {
			computeAnn = n.Annotations
		}
	}
	tree.Walk(walkAnn)
	for _, key := range []string{"sim_tasks_completed", "sim_makespan_ms", "alg"} {
		if _, ok := computeAnn[key]; !ok {
			t.Errorf("compute span missing annotation %q (have %v)", key, computeAnn)
		}
	}
}

// TestTraceTreeCacheOutcomes checks the cache span's outcome annotation
// flips from miss to hit across identical requests.
func TestTraceTreeCacheOutcomes(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	outcome := func() string {
		rec := doGet(t, srv, "/schedule?"+scheduleQuery("HeteroPrio-min"))
		if rec.Code != http.StatusOK {
			t.Fatalf("schedule status %d", rec.Code)
		}
		tr := doGet(t, srv, "/trace/"+rec.Header().Get("X-Trace-Id"))
		var tree obs.TraceTree
		if err := json.Unmarshal(tr.Body.Bytes(), &tree); err != nil {
			t.Fatal(err)
		}
		out := ""
		tree.Walk(func(n *obs.SpanNode) {
			if n.Name == "cache" {
				out, _ = n.Annotations["outcome"].(string)
			}
		})
		return out
	}
	if got := outcome(); got != "miss" {
		t.Errorf("first request cache outcome %q, want miss", got)
	}
	if got := outcome(); got != "hit" {
		t.Errorf("second request cache outcome %q, want hit", got)
	}
}

// TestTracesListing checks /traces lists finished traces slowest-first
// and honors the limit parameter.
func TestTracesListing(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	for _, alg := range []string{"HeteroPrio-min", "HEFT-avg", "DualHP-fifo"} {
		if rec := doGet(t, srv, "/schedule?"+scheduleQuery(alg)); rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", alg, rec.Code)
		}
	}
	rec := doGet(t, srv, "/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("/traces status %d", rec.Code)
	}
	var payload struct {
		Traces []traceListEntry `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Traces) != 3 {
		t.Fatalf("listed %d traces, want 3", len(payload.Traces))
	}
	for i := 1; i < len(payload.Traces); i++ {
		if payload.Traces[i].DurationUS > payload.Traces[i-1].DurationUS {
			t.Errorf("traces not slowest-first at %d: %v", i, payload.Traces)
		}
	}
	for _, row := range payload.Traces {
		if row.Name != "schedule" || !row.Finished || row.Spans < 3 {
			t.Errorf("trace row %+v", row)
		}
	}
	rec = doGet(t, srv, "/traces?limit=1")
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Traces) != 1 {
		t.Errorf("limit=1 returned %d traces", len(payload.Traces))
	}
}

func TestTraceTreeErrors(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	if rec := doGet(t, srv, "/trace/zzzz"); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed id: status %d", rec.Code)
	}
	if rec := doGet(t, srv, "/trace/00000000000000ff"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown id: status %d", rec.Code)
	}
}

// TestMetricsExemplarLinksTrace follows the acceptance path from the
// exposition side: the request-latency HDR family must carry a bucket
// exemplar whose trace ID resolves at /trace/{id}.
func TestMetricsExemplarLinksTrace(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	if rec := doGet(t, srv, "/schedule?"+scheduleQuery("HeteroPrio-min")); rec.Code != http.StatusOK {
		t.Fatalf("schedule status %d", rec.Code)
	}
	body := doGet(t, srv, "/metrics").Body.String()
	var exemplar string
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "hp_latency_request_us_bucket{handler=\"schedule\"") {
			continue
		}
		if i := strings.Index(line, `trace_id="`); i >= 0 {
			exemplar = line[i+len(`trace_id="`) : i+len(`trace_id="`)+16]
			break
		}
	}
	if exemplar == "" {
		t.Fatalf("no exemplar on hp_latency_request_us buckets:\n%s", body)
	}
	if rec := doGet(t, srv, "/trace/"+exemplar); rec.Code != http.StatusOK {
		t.Errorf("exemplar trace %s not resolvable: status %d", exemplar, rec.Code)
	}
}

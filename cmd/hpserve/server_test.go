package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/obs"
)

func get(t *testing.T, srv http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

func TestIndexPage(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	code, body := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"HeteroPrio schedule explorer", "cholesky", "HeteroPrio-min", "/metrics"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestNotFound(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	if code, _ := get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Errorf("status %d, want 404", code)
	}
}

func TestScheduleEndpoint(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	q := url.Values{
		"workload": {"cholesky"}, "n": {"6"}, "cpus": {"4"}, "gpus": {"2"},
		"alg": {"HeteroPrio-min"},
	}
	code, body := get(t, srv, "/schedule?"+q.Encode())
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"<svg", "makespan", "spoliations", "run-000001"} {
		if !strings.Contains(body, want) {
			t.Errorf("schedule page missing %q", want)
		}
	}
}

func TestScheduleEndpointAllWorkloads(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	for _, wl := range []string{"qr", "lu", "wavefront", "chains", "uniform"} {
		q := url.Values{"workload": {wl}, "n": {"4"}, "cpus": {"4"}, "gpus": {"1"}, "alg": {"HEFT-avg"}}
		code, body := get(t, srv, "/schedule?"+q.Encode())
		if code != http.StatusOK || !strings.Contains(body, "<svg") {
			t.Errorf("%s: status %d, svg present %v", wl, code, strings.Contains(body, "<svg"))
		}
	}
}

// Input errors must come back as 400 with the message surfaced in the
// page, not as a 200 that only looks like an error.
func TestScheduleEndpointErrors(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	cases := []url.Values{
		{"workload": {"nope"}, "n": {"4"}, "cpus": {"2"}, "gpus": {"1"}, "alg": {"HeteroPrio-min"}},
		{"workload": {"cholesky"}, "n": {"999"}, "cpus": {"2"}, "gpus": {"1"}, "alg": {"HeteroPrio-min"}},
		{"workload": {"cholesky"}, "n": {"4"}, "cpus": {"0"}, "gpus": {"0"}, "alg": {"HeteroPrio-min"}},
		{"workload": {"cholesky"}, "n": {"4"}, "cpus": {"2"}, "gpus": {"1"}, "alg": {"bogus"}},
	}
	for i, q := range cases {
		code, body := get(t, srv, "/schedule?"+q.Encode())
		if code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
		if !strings.Contains(body, "class=\"error\"") {
			t.Errorf("case %d: error not surfaced", i)
		}
	}
}

func TestCompareEndpoint(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	q := url.Values{"workload": {"cholesky"}, "n": {"5"}, "cpus": {"4"}, "gpus": {"2"}}
	code, body := get(t, srv, "/compare?"+q.Encode())
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"HeteroPrio-min", "DualHP-fifo", "HEFT-avg"} {
		if !strings.Contains(body, want) {
			t.Errorf("compare missing %q", want)
		}
	}
}

func TestCompareEndpointLimits(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	q := url.Values{"workload": {"cholesky"}, "n": {"99"}, "cpus": {"4"}, "gpus": {"2"}}
	code, body := get(t, srv, "/compare?"+q.Encode())
	if code != http.StatusBadRequest {
		t.Errorf("status %d, want 400", code)
	}
	if !strings.Contains(body, "class=\"error\"") {
		t.Error("oversized n not rejected")
	}
}

// TestMetricsEndpoint checks the Prometheus exposition carries the
// scheduler series after a run, and the HTTP series for every handler
// even before it has been hit.
func TestMetricsEndpoint(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	q := url.Values{
		"workload": {"cholesky"}, "n": {"6"}, "cpus": {"4"}, "gpus": {"2"},
		"alg": {"HeteroPrio-min"},
	}
	if code, _ := get(t, srv, "/schedule?"+q.Encode()); code != http.StatusOK {
		t.Fatalf("schedule failed")
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	// The Prometheus text exposition type, exactly: scrapers key their
	// parser off the version parameter.
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type %q, want the Prometheus text exposition type", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"hp_tasks_completed_total",
		"hp_tasks_queued_total",
		"hp_spoliations_total",
		"hp_queue_depth",
		"hp_run_makespan_bucket{le=",
		"hp_run_makespan_count 1",
		"hp_runs_total{alg=\"HeteroPrio-min\"} 1",
		"hp_http_requests_total{handler=\"schedule\"} 1",
		"hp_http_requests_total{handler=\"compare\"} 0",
		"hp_http_request_duration_seconds_bucket{handler=\"schedule\",le=",
		"hp_pool_workers",
		"hp_pool_cells_total",
		"hp_latency_request_us_count{handler=\"schedule\"} 1",
		"hp_latency_phase_us_bucket{phase=\"compute\",le=",
		"hp_trace_finished_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRunsEndpoint checks the JSON run ring: newest first, with the
// summary fields populated.
func TestRunsEndpoint(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	for _, alg := range []string{"HeteroPrio-min", "HEFT-avg"} {
		q := url.Values{"workload": {"cholesky"}, "n": {"5"}, "cpus": {"4"}, "gpus": {"2"}, "alg": {alg}}
		if code, _ := get(t, srv, "/schedule?"+q.Encode()); code != http.StatusOK {
			t.Fatalf("schedule %s failed", alg)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/runs", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var payload struct {
		Runs []obs.RunSummary `json:"runs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(payload.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(payload.Runs))
	}
	if payload.Runs[0].Alg != "HEFT-avg" || payload.Runs[1].Alg != "HeteroPrio-min" {
		t.Errorf("runs not newest-first: %s, %s", payload.Runs[0].Alg, payload.Runs[1].Alg)
	}
	for _, r := range payload.Runs {
		if r.Makespan <= 0 || r.Tasks == 0 || r.ID == "" {
			t.Errorf("incomplete summary: %+v", r)
		}
	}
}

// TestTraceEndpoint checks the live-bridged Perfetto export for both an
// observed scheduler (HeteroPrio) and a comparison scheduler that falls
// back to the post-hoc trace.
func TestTraceEndpoint(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	for _, alg := range []string{"HeteroPrio-min", "HEFT-avg"} {
		q := url.Values{"workload": {"cholesky"}, "n": {"5"}, "cpus": {"4"}, "gpus": {"2"}, "alg": {alg}}
		code, body := get(t, srv, "/trace?"+q.Encode())
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", alg, code)
		}
		var events []map[string]any
		if err := json.Unmarshal([]byte(body), &events); err != nil {
			t.Fatalf("%s: invalid trace JSON: %v", alg, err)
		}
		var complete int
		for _, e := range events {
			if e["ph"] == "X" {
				complete++
			}
		}
		if complete == 0 {
			t.Errorf("%s: no complete events in trace", alg)
		}
	}
	if code, body := get(t, srv, "/trace?workload=nope"); code != http.StatusBadRequest || !strings.Contains(body, "error") {
		t.Errorf("bad workload: status %d, body %q", code, body)
	}
}

// TestPprofEndpoints checks the profiling handlers are mounted.
func TestPprofEndpoints(t *testing.T) {
	srv := newServer(nil, defaultServeConfig())
	if code, body := get(t, srv, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Errorf("pprof index: status %d", code)
	}
	if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof cmdline: status %d", code)
	}
}

package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

func get(t *testing.T, srv http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Code, string(body)
}

func TestIndexPage(t *testing.T) {
	srv := newServer()
	code, body := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"HeteroPrio schedule explorer", "cholesky", "HeteroPrio-min"} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
}

func TestNotFound(t *testing.T) {
	srv := newServer()
	if code, _ := get(t, srv, "/nope"); code != http.StatusNotFound {
		t.Errorf("status %d, want 404", code)
	}
}

func TestScheduleEndpoint(t *testing.T) {
	srv := newServer()
	q := url.Values{
		"workload": {"cholesky"}, "n": {"6"}, "cpus": {"4"}, "gpus": {"2"},
		"alg": {"HeteroPrio-min"},
	}
	code, body := get(t, srv, "/schedule?"+q.Encode())
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"<svg", "makespan", "spoliations"} {
		if !strings.Contains(body, want) {
			t.Errorf("schedule page missing %q", want)
		}
	}
}

func TestScheduleEndpointAllWorkloads(t *testing.T) {
	srv := newServer()
	for _, wl := range []string{"qr", "lu", "wavefront", "chains", "uniform"} {
		q := url.Values{"workload": {wl}, "n": {"4"}, "cpus": {"4"}, "gpus": {"1"}, "alg": {"HEFT-avg"}}
		code, body := get(t, srv, "/schedule?"+q.Encode())
		if code != http.StatusOK || !strings.Contains(body, "<svg") {
			t.Errorf("%s: status %d, svg present %v", wl, code, strings.Contains(body, "<svg"))
		}
	}
}

func TestScheduleEndpointErrors(t *testing.T) {
	srv := newServer()
	cases := []url.Values{
		{"workload": {"nope"}, "n": {"4"}, "cpus": {"2"}, "gpus": {"1"}, "alg": {"HeteroPrio-min"}},
		{"workload": {"cholesky"}, "n": {"999"}, "cpus": {"2"}, "gpus": {"1"}, "alg": {"HeteroPrio-min"}},
		{"workload": {"cholesky"}, "n": {"4"}, "cpus": {"0"}, "gpus": {"0"}, "alg": {"HeteroPrio-min"}},
		{"workload": {"cholesky"}, "n": {"4"}, "cpus": {"2"}, "gpus": {"1"}, "alg": {"bogus"}},
	}
	for i, q := range cases {
		code, body := get(t, srv, "/schedule?"+q.Encode())
		if code != http.StatusOK {
			t.Errorf("case %d: status %d", i, code)
		}
		if !strings.Contains(body, "class=\"error\"") {
			t.Errorf("case %d: error not surfaced", i)
		}
	}
}

func TestCompareEndpoint(t *testing.T) {
	srv := newServer()
	q := url.Values{"workload": {"cholesky"}, "n": {"5"}, "cpus": {"4"}, "gpus": {"2"}}
	code, body := get(t, srv, "/compare?"+q.Encode())
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{"HeteroPrio-min", "DualHP-fifo", "HEFT-avg"} {
		if !strings.Contains(body, want) {
			t.Errorf("compare missing %q", want)
		}
	}
}

func TestCompareEndpointLimits(t *testing.T) {
	srv := newServer()
	q := url.Values{"workload": {"cholesky"}, "n": {"99"}, "cpus": {"4"}, "gpus": {"2"}}
	_, body := get(t, srv, "/compare?"+q.Encode())
	if !strings.Contains(body, "class=\"error\"") {
		t.Error("oversized n not rejected")
	}
}

package main

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/load"
)

// TestLoadHarnessAgainstServer closes the loop between cmd/hpload's
// harness and a real hpserve instance over HTTP: the open-loop plan
// replays cleanly, every request is accounted for in a status class,
// sampled traces resolve at /trace/{id}, and the per-phase breakdown
// covers the serving pipeline.
func TestLoadHarnessAgainstServer(t *testing.T) {
	ts := httptest.NewServer(newServer(nil, defaultServeConfig()))
	defer ts.Close()

	rep, err := load.Run(context.Background(), load.Config{
		BaseURL:     ts.URL,
		Plan:        load.PlanConfig{Requests: 40, Rate: 400, Seed: 42},
		Concurrency: 8,
		TraceSample: 1, // resolve every OK request's trace
	})
	if err != nil {
		t.Fatal(err)
	}

	total := rep.Status.OK + rep.Status.Shed + rep.Status.Deadline + rep.Status.Errors
	if total != 40 {
		t.Fatalf("status classes sum to %d, want 40: %+v", total, rep.Status)
	}
	if rep.Status.Errors != 0 {
		t.Fatalf("transport/server errors against live server: %+v", rep.Status)
	}
	if rep.Status.OK == 0 {
		t.Fatalf("no request succeeded: %+v", rep.Status)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P999 < rep.Latency.P50 {
		t.Fatalf("latency stats %+v", rep.Latency)
	}
	if rep.HitRate < 0 || rep.HitRate > 1 {
		t.Fatalf("hit rate %g out of range", rep.HitRate)
	}
	if rep.SampledTraces == 0 {
		t.Fatal("no traces sampled from the live server")
	}
	phases := map[string]load.PhaseStat{}
	for _, p := range rep.Phases {
		phases[p.Phase] = p
	}
	// Admission, cache, and render run on every request; compute runs on
	// every cache miss, and the plan always contains misses.
	for _, want := range []string{"admission", "cache", "compute", "render"} {
		st, ok := phases[want]
		if !ok {
			t.Errorf("phase %q missing from breakdown: %+v", want, rep.Phases)
			continue
		}
		if st.Count == 0 || st.P99 < st.P50 {
			t.Errorf("phase %q stats implausible: %+v", want, st)
		}
	}
	// The compute phase must dominate render for this CPU-bound service —
	// a sanity check that phase attribution is not shuffled.
	if phases["compute"].P99 < phases["render"].P50 {
		t.Errorf("compute (%+v) not dominating render (%+v)", phases["compute"], phases["render"])
	}
}

// TestLoadPlanStableAgainstServer re-runs the same seed at different
// concurrency against the live server and checks the plan fingerprint
// is byte-stable — the property the CI smoke job asserts end to end.
func TestLoadPlanStableAgainstServer(t *testing.T) {
	ts := httptest.NewServer(newServer(nil, defaultServeConfig()))
	defer ts.Close()

	var prev string
	for _, conc := range []int{2, 8} {
		rep, err := load.Run(context.Background(), load.Config{
			BaseURL:     ts.URL,
			Plan:        load.PlanConfig{Requests: 20, Rate: 500, Seed: 7},
			Concurrency: conc,
		})
		if err != nil {
			t.Fatal(err)
		}
		if prev != "" && rep.Plan.Hash != prev {
			t.Fatalf("plan hash changed with concurrency: %s vs %s", prev, rep.Plan.Hash)
		}
		prev = rep.Plan.Hash
	}
}

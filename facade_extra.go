package hetero

import (
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/cancel"
	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stf"
	"repro/internal/tile"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// CancelFlag is the cooperative cancellation token passed to real tasks;
// kernels poll it and abandon the run when spoliated.
type CancelFlag = cancel.Flag

// Queue is HeteroPrio's double-ended acceleration-factor queue, exported
// for building custom policies (GPU workers pop the front, CPU workers the
// back).
type Queue = core.Queue

// NewQueue returns an empty queue; usePrio enables priority tie-breaking.
func NewQueue(usePrio bool) *Queue { return core.NewQueue(usePrio) }

// ReleasedTask is a task with a release date for the online setting.
type ReleasedTask = core.ReleasedTask

// ScheduleOnline runs HeteroPrio with tasks arriving at release dates.
func ScheduleOnline(tasks []ReleasedTask, pl Platform, opt Options) (Result, error) {
	return core.ScheduleOnline(tasks, pl, opt)
}

// MCTIndependent schedules independent tasks with the classic Minimum
// Completion Time greedy baseline.
func MCTIndependent(in Instance, pl Platform) (*Schedule, error) {
	return sched.MCTIndependent(in, pl)
}

// MCTDAG schedules a task graph online with the MCT rule.
func MCTDAG(g *Graph, pl Platform) (*Schedule, error) {
	return sched.MCTDAG(g, pl)
}

// Flow is the sequential-task-flow submission interface: tasks declare
// data accesses and the dependency DAG is inferred from the hazards.
type Flow = stf.Flow

// DataHandle identifies a piece of data registered with a Flow.
type DataHandle = stf.Handle

// DataAccess pairs a handle with an access mode.
type DataAccess = stf.Access

// NewFlow returns an empty sequential task flow.
func NewFlow() *Flow { return stf.New() }

// STF access constructors (read, write, read-write).
var (
	ReadAccess      = stf.R
	WriteAccess     = stf.W
	ReadWriteAccess = stf.RW
)

// ChromeTrace renders a schedule in the Chrome trace-event JSON format.
func ChromeTrace(s *Schedule, names map[int]string) ([]byte, error) {
	return trace.Chrome(s, names)
}

// SVGGantt renders a schedule as a standalone SVG Gantt chart.
func SVGGantt(s *Schedule, width int) string { return trace.SVG(s, width) }

// Jitter perturbs every processing time of a copy of the instance with
// log-normal noise exp(sigma*N(0,1)).
func Jitter(in Instance, sigma float64, rng *rand.Rand) Instance {
	return workloads.Jitter(in, sigma, rng)
}

// Real-execution runtime (see examples/realcholesky): RuntimeGraph holds
// real Go closures with per-class duration estimates, RunGraph executes it
// on goroutine worker pools with HeteroPrio scheduling and cooperative
// spoliation.
type (
	// RuntimeGraph is a DAG of real tasks for the real-time executor.
	RuntimeGraph = runtime.Graph
	// RuntimeTask is one unit of real work with duration estimates.
	RuntimeTask = runtime.Task
	// RuntimeConfig parameterizes a real execution.
	RuntimeConfig = runtime.Config
	// RuntimeReport is the outcome of a real execution.
	RuntimeReport = runtime.Report
)

// NewRuntimeGraph returns an empty real-task graph.
func NewRuntimeGraph() *RuntimeGraph { return runtime.NewGraph() }

// RunGraph executes a real-task graph with the HeteroPrio policy.
func RunGraph(g *RuntimeGraph, cfg RuntimeConfig) (*RuntimeReport, error) {
	return runtime.Run(g, cfg)
}

// Dense tile substrate (real kernels).
type (
	// Matrix is a dense row-major float64 matrix.
	Matrix = tile.Matrix
	// TiledMatrix is a matrix partitioned into square tiles.
	TiledMatrix = tile.Tiled
)

// NewMatrix returns a zeroed r x c matrix.
func NewMatrix(r, c int) *Matrix { return tile.NewMatrix(r, c) }

// RandomSPD returns a random symmetric positive-definite matrix.
func RandomSPD(n int, rng *rand.Rand) *Matrix { return tile.RandomSPD(n, rng) }

// ValidateSchedule checks the structural invariants of a schedule against
// its instance and optional DAG (nil for independent tasks).
func ValidateSchedule(s *Schedule, in Instance, g *Graph) error {
	return s.Validate(in, g)
}

// Running re-export for custom policies inspecting kernel state.
type Running = sim.Running

// WorstCaseConfig parameterizes WorstCaseSearch.
type WorstCaseConfig = adversary.Config

// WorstCaseResult is the outcome of a WorstCaseSearch.
type WorstCaseResult = adversary.Result

// WorstCaseSearch hill-climbs over small independent instances to find
// the worst HeteroPrio/optimum ratio on the configured platform shape —
// the empirical companion of the paper's Section 5 constructions.
func WorstCaseSearch(cfg WorstCaseConfig) (WorstCaseResult, error) {
	return adversary.Search(cfg)
}

package hetero

import (
	"math/rand"
	"strings"
	"testing"
)

func TestFacadeQueue(t *testing.T) {
	q := NewQueue(false)
	q.Push(Task{ID: 0, CPUTime: 4, GPUTime: 1})
	q.Push(Task{ID: 1, CPUTime: 1, GPUTime: 4})
	if q.Len() != 2 {
		t.Fatal("queue len")
	}
	if q.PopFront().ID != 0 || q.PopBack().ID != 1 {
		t.Error("queue ends wrong")
	}
}

func TestFacadeOnline(t *testing.T) {
	pl := NewPlatform(1, 1)
	res, err := ScheduleOnline([]ReleasedTask{
		{Task: Task{ID: 0, CPUTime: 2, GPUTime: 1}, Release: 0},
		{Task: Task{ID: 1, CPUTime: 2, GPUTime: 1}, Release: 5},
	}, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() != 6 {
		t.Errorf("makespan = %v, want 6", res.Makespan())
	}
}

func TestFacadeMCT(t *testing.T) {
	pl := NewPlatform(1, 1)
	in := Instance{{ID: 0, CPUTime: 2, GPUTime: 1}}
	s, err := MCTIndependent(in, pl)
	if err != nil || s.Makespan() != 1 {
		t.Errorf("MCTIndependent: %v %v", s.Makespan(), err)
	}
	g := Cholesky(3)
	sd, err := MCTDAG(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSchedule(sd, g.Tasks(), g); err != nil {
		t.Error(err)
	}
}

func TestFacadeTraceExports(t *testing.T) {
	pl := NewPlatform(1, 1)
	in := Instance{{ID: 0, Name: "k", CPUTime: 2, GPUTime: 1}}
	res, err := ScheduleIndependent(in, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := ChromeTrace(res.Schedule, map[int]string{0: "k"})
	if err != nil || !strings.Contains(string(raw), "\"k\"") {
		t.Errorf("chrome trace: %v", err)
	}
	if svg := SVGGantt(res.Schedule, 400); !strings.Contains(svg, "<svg") {
		t.Error("svg gantt broken")
	}
}

func TestFacadeJitterAndMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := Instance{{ID: 0, CPUTime: 10, GPUTime: 1}}
	out := Jitter(in, 0.2, rng)
	if out[0].CPUTime == 10 && out[0].GPUTime == 1 {
		t.Error("jitter no-op")
	}
	m := NewMatrix(2, 2)
	if m.Rows != 2 {
		t.Error("matrix")
	}
	spd := RandomSPD(8, rng)
	if spd.Rows != 8 {
		t.Error("spd")
	}
}

func TestFacadeRuntime(t *testing.T) {
	g := NewRuntimeGraph()
	ran := false
	a := g.Add(RuntimeTask{
		Name: "t", EstCPU: 0.001, EstGPU: 0.001,
		Run: func(kind Kind, flag *CancelFlag) (bool, error) {
			ran = true
			return true, nil
		},
	})
	b := g.Add(RuntimeTask{
		Name: "u", EstCPU: 0.001, EstGPU: 0.001,
		Run: func(kind Kind, flag *CancelFlag) (bool, error) {
			if !ran {
				t.Error("dependency order violated")
			}
			return true, nil
		},
	})
	g.AddDep(a, b)
	rep, err := RunGraph(g, RuntimeConfig{CPUWorkers: 1, GPUWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ran || rep.Wall <= 0 {
		t.Error("runtime did not execute")
	}
}

func TestFacadeRefinedBound(t *testing.T) {
	g := Cholesky(4)
	pl := NewPlatform(4, 2)
	base, err := DAGLowerBound(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := DAGLowerBoundRefined(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	if refined < base-1e-9 {
		t.Errorf("refined %v below base %v", refined, base)
	}
}

func TestFacadeWorstCaseSearch(t *testing.T) {
	res, err := WorstCaseSearch(WorstCaseConfig{
		Platform: NewPlatform(1, 1), MaxTasks: 3, Iters: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio < 1 || res.Ratio > 1.619 {
		t.Errorf("ratio %v outside [1, phi]", res.Ratio)
	}
}

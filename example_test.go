package hetero_test

import (
	"fmt"

	hetero "repro"
)

// ExampleScheduleIndependent schedules three kernels on a 1-CPU + 1-GPU
// node and prints the makespan against the lower bound.
func ExampleScheduleIndependent() {
	pl := hetero.NewPlatform(1, 1)
	in := hetero.Instance{
		{ID: 0, Name: "dgemm", CPUTime: 50, GPUTime: 2},
		{ID: 1, Name: "dpotrf", CPUTime: 12, GPUTime: 7},
		{ID: 2, Name: "dtrsm", CPUTime: 28, GPUTime: 4},
	}
	res, err := hetero.ScheduleIndependent(in, pl, hetero.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("makespan %.0f ms, %d spoliations\n", res.Makespan(), res.Spoliations)
	// Output: makespan 12 ms, 0 spoliations
}

// ExampleScheduleDAG builds a tiny dependency chain and schedules it.
func ExampleScheduleDAG() {
	g := hetero.NewGraph()
	a := g.AddTask(hetero.Task{Name: "produce", CPUTime: 4, GPUTime: 1})
	b := g.AddTask(hetero.Task{Name: "consume", CPUTime: 4, GPUTime: 1})
	g.AddEdge(a, b)
	res, err := hetero.ScheduleDAG(g, hetero.NewPlatform(1, 1), hetero.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("makespan %.0f\n", res.Makespan())
	// Output: makespan 2
}

// ExampleNewFlow shows the sequential-task-flow interface: dependencies
// are inferred from declared data accesses.
func ExampleNewFlow() {
	f := hetero.NewFlow()
	x := f.Data("x")
	writer := f.MustSubmit(hetero.Task{Name: "w", CPUTime: 1, GPUTime: 1}, hetero.WriteAccess(x))
	reader := f.MustSubmit(hetero.Task{Name: "r", CPUTime: 1, GPUTime: 1}, hetero.ReadAccess(x))
	g := f.Graph()
	fmt.Printf("reader depends on writer: %v\n", g.Preds(reader)[0] == writer)
	// Output: reader depends on writer: true
}

// ExampleAreaBound computes the Section 4.2 lower bound.
func ExampleAreaBound() {
	in := hetero.Instance{
		{ID: 0, CPUTime: 4, GPUTime: 1},
		{ID: 1, CPUTime: 4, GPUTime: 1},
	}
	lb, err := hetero.AreaBound(in, hetero.NewPlatform(1, 1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("area bound %.1f\n", lb)
	// Output: area bound 1.6
}

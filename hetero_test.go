package hetero

import (
	"math"
	"testing"
)

// TestFacadeQuickstart exercises the README quickstart path end to end.
func TestFacadeQuickstart(t *testing.T) {
	pl := NewPlatform(2, 1)
	in := Instance{
		{ID: 0, Name: "dgemm", CPUTime: 50, GPUTime: 1.7},
		{ID: 1, Name: "dpotrf", CPUTime: 12, GPUTime: 7},
		{ID: 2, Name: "dtrsm", CPUTime: 28, GPUTime: 3.2},
	}
	res, err := ScheduleIndependent(in, pl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in, nil); err != nil {
		t.Fatal(err)
	}
	lb, err := LowerBound(in, pl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() < lb-1e-9 {
		t.Errorf("makespan %v below lower bound %v", res.Makespan(), lb)
	}
}

func TestFacadeDAGPath(t *testing.T) {
	g := Cholesky(4)
	pl := NewPlatform(4, 2)
	if _, err := g.AssignBottomLevelPriorities(WeightMin, pl); err != nil {
		t.Fatal(err)
	}
	res, err := ScheduleDAG(g, pl, Options{UsePriorities: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(g.Tasks(), g); err != nil {
		t.Fatal(err)
	}
	lb, err := DAGLowerBound(g, pl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan() < lb-1e-9 {
		t.Errorf("makespan %v below DAG lower bound %v", res.Makespan(), lb)
	}

	heft, err := HEFT(g, pl, WeightAvg)
	if err != nil {
		t.Fatal(err)
	}
	dual, err := DualHPDAG(g, pl, RankMin)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*Schedule{"HEFT": heft, "DualHP": dual} {
		if err := s.Validate(g.Tasks(), g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFacadeBaselinesAndBounds(t *testing.T) {
	pl := NewPlatform(1, 1)
	in := Instance{
		{ID: 0, CPUTime: 4, GPUTime: 1},
		{ID: 1, CPUTime: 1, GPUTime: 4},
	}
	opt, err := OptimalIndependent(in, pl)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-1) > 1e-9 {
		t.Errorf("opt = %v, want 1", opt)
	}
	h, err := HEFTIndependent(in, pl, WeightAvg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DualHPIndependent(in, pl)
	if err != nil {
		t.Fatal(err)
	}
	if h.Makespan() < opt-1e-9 || d.Makespan() < opt-1e-9 {
		t.Error("heuristics beat the optimum")
	}
	sol, err := Area(in, pl)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := AreaBound(in, pl)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Bound != ab {
		t.Errorf("Area and AreaBound disagree: %v vs %v", sol.Bound, ab)
	}
}

func TestFacadeWorkloadBuilders(t *testing.T) {
	for name, g := range map[string]*Graph{
		"cholesky": Cholesky(3),
		"qr":       QR(3),
		"lu":       LU(3),
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.Len() == 0 {
			t.Errorf("%s: empty graph", name)
		}
	}
	if NewGraph().Len() != 0 {
		t.Error("NewGraph not empty")
	}
}
